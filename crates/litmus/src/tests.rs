//! The litmus corpus: classic weak-memory shapes, parameterised by barrier
//! placement, validating the seven LKMM cases of Appendix §10.1.

use oemu::{LoadAnn, StoreAnn};

use crate::{Litmus, Op};

/// Barrier configuration for the two-sided tests.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Barriers {
    /// No barriers anywhere (the buggy shape).
    None,
    /// Writer-side barrier only (`smp_wmb`).
    WriterOnly,
    /// Reader-side barrier only (`smp_rmb`).
    ReaderOnly,
    /// Both barriers (the fixed shape).
    Both,
    /// Release store paired with acquire load (Cases 4 and 5).
    ReleaseAcquire,
}

fn st(var: usize, val: u64) -> Op {
    Op::Store {
        var,
        val,
        ann: StoreAnn::Plain,
    }
}

fn ld(reg: usize, var: usize) -> Op {
    Op::Load {
        reg,
        var,
        ann: LoadAnn::Plain,
    }
}

/// **SB** (store buffering; the shape of the paper's Figure 10 Rust
/// example): each thread stores to one variable and loads the other. The
/// weak outcome `r0 == 0 && r1 == 0` requires store-load reordering, which
/// delayed stores emulate; `smp_mb` between the accesses forbids it
/// (Case 1).
pub fn store_buffering(with_mb: bool) -> Litmus {
    let mid: &[Op] = if with_mb { &[Op::Mb] } else { &[] };
    let prog = |stvar: usize, ldvar: usize, reg: usize| {
        let mut p = vec![st(stvar, 1)];
        p.extend_from_slice(mid);
        p.push(ld(reg, ldvar));
        p
    };
    Litmus {
        name: if with_mb { "SB+mbs" } else { "SB" },
        threads: vec![prog(0, 1, 0), prog(1, 0, 1)],
        nvars: 2,
        nregs: 2,
    }
}

/// **MP** (message passing; the shape of the paper's Figure 1): the writer
/// initialises data then sets a flag; the reader checks the flag then reads
/// the data. The weak outcome `flag == 1 && data == 0` is the OOO bug; the
/// barrier configuration decides whether it is reachable.
pub fn message_passing(barriers: Barriers) -> Litmus {
    let writer = match barriers {
        Barriers::None | Barriers::ReaderOnly => vec![st(0, 1), st(1, 1)],
        Barriers::WriterOnly | Barriers::Both => vec![st(0, 1), Op::Wmb, st(1, 1)],
        Barriers::ReleaseAcquire => vec![
            st(0, 1),
            Op::Store {
                var: 1,
                val: 1,
                ann: StoreAnn::Release,
            },
        ],
    };
    let reader = match barriers {
        Barriers::None | Barriers::WriterOnly => vec![ld(0, 1), ld(1, 0)],
        Barriers::ReaderOnly | Barriers::Both => vec![ld(0, 1), Op::Rmb, ld(1, 0)],
        Barriers::ReleaseAcquire => vec![
            Op::Load {
                reg: 0,
                var: 1,
                ann: LoadAnn::Acquire,
            },
            ld(1, 0),
        ],
    };
    Litmus {
        name: "MP",
        threads: vec![writer, reader],
        nvars: 2,
        nregs: 2,
    }
}

/// **LB** (load buffering): each thread loads one variable then stores to
/// the other. The weak outcome `r0 == 1 && r1 == 1` requires **load-store**
/// reordering, which OEMU deliberately does not emulate (§3, "Scope of
/// emulation"; LKMM Case 7 dependencies are thereby trivially respected).
pub fn load_buffering() -> Litmus {
    Litmus {
        name: "LB",
        threads: vec![vec![ld(0, 1), st(0, 1)], vec![ld(1, 0), st(1, 1)]],
        nvars: 2,
        nregs: 2,
    }
}

/// **CoRR** (coherence of read-read): one thread stores; the other loads
/// the same variable twice. The outcome `r0 == 1 && r1 == 0` (reads going
/// backwards in time) violates per-location coherence and is forbidden on
/// every architecture, including Alpha.
pub fn corr() -> Litmus {
    Litmus {
        name: "CoRR",
        threads: vec![vec![st(0, 1)], vec![ld(0, 0), ld(1, 0)]],
        nvars: 1,
        nregs: 2,
    }
}

/// **MP with a `READ_ONCE` flag read** (Case 6): the Alpha address-
/// dependency rule — annotating the first load makes it an implied load
/// barrier, so the dependent load cannot observe the pre-publication value.
pub fn mp_read_once_flag() -> Litmus {
    Litmus {
        name: "MP+ronce",
        threads: vec![
            vec![st(0, 1), Op::Wmb, st(1, 1)],
            vec![
                Op::Load {
                    reg: 0,
                    var: 1,
                    ann: LoadAnn::ReadOnce,
                },
                ld(1, 0),
            ],
        ],
        nvars: 2,
        nregs: 2,
    }
}

/// **REL+st** (one-way release): the writer publishes with a release
/// store, then performs a later plain store; the reader checks the later
/// store first (`READ_ONCE`, so its own loads stay in order on TSO/PSO)
/// and then the released variable. A release fence only orders what came
/// *before* it: on PSO/Arm the release store may linger in its store
/// queue while the later plain store commits, so `r0 == 1 && r1 == 0` is
/// observable. TSO's total store order forbids it.
pub fn release_then_store() -> Litmus {
    Litmus {
        name: "REL+st",
        threads: vec![
            vec![
                Op::Store {
                    var: 0,
                    val: 1,
                    ann: StoreAnn::Release,
                },
                st(1, 1),
            ],
            vec![
                Op::Load {
                    reg: 0,
                    var: 1,
                    ann: LoadAnn::ReadOnce,
                },
                ld(1, 0),
            ],
        ],
        nvars: 2,
        nregs: 2,
    }
}

/// **RMW publication**: the writer delays two plain stores and then does a
/// relaxed `atomic_inc` on the first variable; the reader observes the
/// atomic's result and the unrelated store. The conflicting RMW drains the
/// whole buffer on TSO but only the conflicting address's queue on
/// PSO/Arm. The outcome *sets* still agree — the explorer may simply not
/// delay the unrelated store — which pins the drain policy as a
/// trace-level (not outcome-level) distinction.
pub fn rmw_publication() -> Litmus {
    Litmus {
        name: "RMW+pub",
        threads: vec![
            vec![st(0, 1), st(1, 1), Op::Rmw { var: 0 }],
            vec![
                Op::Load {
                    reg: 0,
                    var: 0,
                    ann: LoadAnn::ReadOnce,
                },
                ld(1, 1),
            ],
        ],
        nvars: 2,
        nregs: 2,
    }
}

/// **2+2W** (coherence of writes): both threads write both variables in
/// opposite orders; the final memory state must be explainable by a
/// per-location total order. Exercised through post-hoc loads.
pub fn two_plus_two_w() -> Litmus {
    Litmus {
        name: "2+2W",
        threads: vec![
            vec![st(0, 1), st(1, 2)],
            vec![st(1, 1), st(0, 2)],
            // Observer reads both after the writers are done (thread 3 is
            // last in every interleaving that matters for the final state).
            vec![ld(0, 0), ld(1, 1)],
        ],
        nvars: 2,
        nregs: 2,
    }
}

#[cfg(test)]
mod litmus_tests {
    use super::*;

    #[test]
    fn sb_weak_outcome_reachable_without_barriers() {
        // Figure 10: both threads read 0 — the assertion-violating outcome.
        assert!(store_buffering(false).reachable(&[0, 0]));
    }

    #[test]
    fn sb_with_mb_is_sequentially_consistent() {
        // Case 1: smp_mb forbids the weak outcome; SC outcomes remain.
        let outcomes = store_buffering(true).explore();
        assert!(!outcomes.contains(&vec![0, 0]), "forbidden by smp_mb");
        assert!(outcomes.contains(&vec![1, 1]));
        assert!(outcomes.contains(&vec![0, 1]));
        assert!(outcomes.contains(&vec![1, 0]));
    }

    #[test]
    fn mp_weak_outcome_reachable_without_barriers() {
        // Figure 1's bug: flag observed, data not.
        assert!(message_passing(Barriers::None).reachable(&[1, 0]));
    }

    #[test]
    fn mp_writer_barrier_alone_is_insufficient() {
        // §2.2: *both* barriers are necessary. With only smp_wmb, the
        // reader's loads may still be reordered (versioned) — the paper's
        // order #18 -> #6 -> #8 -> #14.
        assert!(message_passing(Barriers::WriterOnly).reachable(&[1, 0]));
    }

    #[test]
    fn mp_reader_barrier_alone_is_insufficient() {
        // With only smp_rmb, the writer's stores may still be reordered
        // (delayed) — the paper's order #8 -> #14 -> #18 -> #6.
        assert!(message_passing(Barriers::ReaderOnly).reachable(&[1, 0]));
    }

    #[test]
    fn mp_with_both_barriers_is_safe() {
        // Cases 2 + 3: the wmb/rmb pair forbids the bug.
        assert!(!message_passing(Barriers::Both).reachable(&[1, 0]));
    }

    #[test]
    fn mp_release_acquire_is_safe() {
        // Cases 4 + 5.
        assert!(!message_passing(Barriers::ReleaseAcquire).reachable(&[1, 0]));
    }

    #[test]
    fn lb_weak_outcome_unreachable() {
        // Load-store reordering is out of scope: [1, 1] must never appear.
        let outcomes = load_buffering().explore();
        assert!(!outcomes.contains(&vec![1, 1]), "no load-store reordering");
        // Sanity: SC outcomes are still observable.
        assert!(outcomes.contains(&vec![0, 0]));
        assert!(outcomes.contains(&vec![1, 0]));
        assert!(outcomes.contains(&vec![0, 1]));
    }

    #[test]
    fn corr_coherence_holds() {
        // Reads of one location never travel backwards: 1-then-0 is
        // forbidden even with versioned loads.
        let outcomes = corr().explore();
        assert!(!outcomes.contains(&vec![1, 0]), "CoRR violation");
        assert!(outcomes.contains(&vec![0, 0]));
        assert!(outcomes.contains(&vec![0, 1]));
        assert!(outcomes.contains(&vec![1, 1]));
    }

    #[test]
    fn read_once_implies_load_barrier() {
        // Case 6: with READ_ONCE on the flag, the dependent load cannot
        // read the pre-publication value.
        assert!(!mp_read_once_flag().reachable(&[1, 0]));
    }

    #[test]
    fn two_plus_two_w_final_state_is_coherent() {
        // The observer sees some per-location-ordered final state; values
        // are only ever 1 or 2 once written, and the all-initial state is
        // possible only if the observer ran first.
        let outcomes = two_plus_two_w().explore();
        for regs in &outcomes {
            for &v in regs {
                assert!(v <= 2, "no out-of-thin-air values");
            }
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = store_buffering(false).explore();
        let b = store_buffering(false).explore();
        assert_eq!(a, b);
    }

    /// The per-model expectation table: every corpus case, its
    /// characteristic weak outcome, and whether that outcome is reachable
    /// under each model, in [`MemoryModel::ALL`] order (TSO, PSO, Arm).
    /// The rows where the columns differ are the models' observable
    /// signatures: PSO adds the one-way-release reordering (REL+st), and
    /// Arm additionally drops the `READ_ONCE` load barrier (MP+ronce).
    #[test]
    fn per_model_expectation_table() {
        use oemu::MemoryModel;
        let table: [(Litmus, Vec<u64>, [bool; 3]); 12] = [
            (store_buffering(false), vec![0, 0], [true, true, true]),
            (store_buffering(true), vec![0, 0], [false, false, false]),
            (
                message_passing(Barriers::None),
                vec![1, 0],
                [true, true, true],
            ),
            (
                message_passing(Barriers::WriterOnly),
                vec![1, 0],
                [true, true, true],
            ),
            (
                message_passing(Barriers::ReaderOnly),
                vec![1, 0],
                [true, true, true],
            ),
            (
                message_passing(Barriers::Both),
                vec![1, 0],
                [false, false, false],
            ),
            (
                message_passing(Barriers::ReleaseAcquire),
                vec![1, 0],
                [false, false, false],
            ),
            (load_buffering(), vec![1, 1], [false, false, false]),
            (corr(), vec![1, 0], [false, false, false]),
            (mp_read_once_flag(), vec![1, 0], [false, false, true]),
            (release_then_store(), vec![1, 0], [false, true, true]),
            (rmw_publication(), vec![2, 0], [true, true, true]),
        ];
        for (t, regs, expected) in &table {
            for (model, &want) in MemoryModel::ALL.iter().zip(expected) {
                assert_eq!(
                    t.reachable_under(*model, regs),
                    want,
                    "{} outcome {:?} under {}",
                    t.name,
                    regs,
                    model.name()
                );
            }
        }
    }

    /// Each weaker model's distinguishing outcome, stated directly: the
    /// acceptance criterion that PSO and Arm each expose at least one
    /// litmus outcome TSO forbids.
    #[test]
    fn weaker_models_are_strictly_weaker_than_tso() {
        use oemu::MemoryModel;
        let rel = release_then_store();
        assert!(!rel.reachable(&[1, 0]), "TSO orders all stores");
        assert!(rel.reachable_under(MemoryModel::Pso, &[1, 0]));
        assert!(rel.reachable_under(MemoryModel::Arm, &[1, 0]));
        let ronce = mp_read_once_flag();
        assert!(!ronce.reachable(&[1, 0]));
        assert!(!ronce.reachable_under(MemoryModel::Pso, &[1, 0]));
        assert!(ronce.reachable_under(MemoryModel::Arm, &[1, 0]));
    }
}
