//! LKMM litmus-test harness for OEMU.
//!
//! Litmus tests are the standard vocabulary for talking about memory models
//! (the paper's §3.3 cites the LKMM's own `herd` litmus corpus). This crate
//! runs small multi-threaded programs against the OEMU engine, *exhaustively
//! exploring* the space the engine controls: every interleaving of the
//! threads' operations × every subset of delayed stores × every subset of
//! versioned loads. The observed register outcomes then witness both
//! directions of §3.3's compliance claim:
//!
//! - outcomes an architecture could produce (store buffering, message
//!   passing without barriers) **are reachable**, demonstrating OEMU's
//!   reordering power;
//! - outcomes the LKMM forbids (reordering across `smp_mb`/`smp_wmb`/
//!   `smp_rmb`, acquire/release violations, load-store reordering, CoRR
//!   coherence violations) **are unreachable**, demonstrating that OEMU
//!   never reorders what a processor would not (Cases 1–7 of §10.1).
//!
//! # Examples
//!
//! Store buffering (the paper's Figure 10 shape) is observable without
//! barriers and forbidden with `smp_mb`:
//!
//! ```
//! use litmus::tests;
//!
//! let sb = tests::store_buffering(false);
//! assert!(sb.reachable(&[0, 0]), "both threads read 0: weak memory");
//! let sb_mb = tests::store_buffering(true);
//! assert!(!sb_mb.reachable(&[0, 0]), "smp_mb forbids it");
//! ```

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};

use oemu::{Engine, Iid, LoadAnn, MemoryModel, RmwOrder, StoreAnn, Tid};

pub mod tests;

/// One operation of a litmus thread program.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Store `val` to shared variable `var`.
    Store {
        /// Variable index.
        var: usize,
        /// Value stored.
        val: u64,
        /// Ordering annotation.
        ann: StoreAnn,
    },
    /// Load shared variable `var` into register `reg`.
    Load {
        /// Destination register index.
        reg: usize,
        /// Variable index.
        var: usize,
        /// Ordering annotation.
        ann: LoadAnn,
    },
    /// `smp_wmb()`.
    Wmb,
    /// `smp_rmb()`.
    Rmb,
    /// `smp_mb()`.
    Mb,
    /// Relaxed atomic increment of `var` (`atomic_inc`). Never delayed or
    /// versioned; its store-buffer conflict handling is where the TSO and
    /// PSO/Arm drain policies become litmus-visible.
    Rmw {
        /// Variable index.
        var: usize,
    },
}

/// A litmus test: named thread programs over zero-initialised variables.
#[derive(Clone, Debug)]
pub struct Litmus {
    /// Test name (for reports).
    pub name: &'static str,
    /// One program per thread.
    pub threads: Vec<Vec<Op>>,
    /// Number of shared variables.
    pub nvars: usize,
    /// Number of registers (across all threads).
    pub nregs: usize,
}

/// Allocator of unique synthetic source coordinates, so each op of each
/// test instance gets a distinct, stable [`Iid`].
static NEXT_LINE: AtomicU32 = AtomicU32::new(1);

impl Litmus {
    /// Exhaustively explores the engine-controllable space and returns the
    /// set of observable register outcomes.
    ///
    /// Explored dimensions: all interleavings of the threads' operations
    /// (the custom scheduler's freedom), all subsets of plain/`WRITE_ONCE`
    /// stores to delay, and all subsets of loads to version (OEMU's Table 2
    /// freedom). Store buffers are flushed at thread exit, as at syscall
    /// exit in the kernel.
    ///
    /// Runs under the default TSO model — identical to
    /// [`explore_under`](Litmus::explore_under) with [`MemoryModel::Tso`].
    pub fn explore(&self) -> BTreeSet<Vec<u64>> {
        self.explore_under(MemoryModel::Tso)
    }

    /// [`explore`](Litmus::explore) against an engine emulating `model`.
    /// The controllable dimensions are the same; what differs is how the
    /// engine resolves them (RMW drain policy, which barriers gate the
    /// versioning window), so the reachable outcome sets differ per model.
    pub fn explore_under(&self, model: MemoryModel) -> BTreeSet<Vec<u64>> {
        // Assign each op a unique iid (stable within this exploration).
        let total_ops: u32 = self.threads.iter().map(|t| t.len() as u32).sum();
        let base = NEXT_LINE.fetch_add(total_ops, Ordering::Relaxed);
        let mut iids: Vec<Vec<Iid>> = Vec::new();
        let mut next = base;
        for prog in &self.threads {
            let mut row = Vec::new();
            for _ in prog {
                row.push(Iid::register("litmus.rs", next, 1));
                next += 1;
            }
            iids.push(row);
        }
        // Collect delayable stores and versionable loads.
        let mut stores = Vec::new();
        let mut loads = Vec::new();
        for (t, prog) in self.threads.iter().enumerate() {
            for (o, op) in prog.iter().enumerate() {
                match op {
                    Op::Store { ann, .. }
                        if *ann != StoreAnn::Release || model.release_store_is_delayable() =>
                    {
                        stores.push((t, o))
                    }
                    Op::Load { .. } => loads.push((t, o)),
                    _ => {}
                }
            }
        }
        let mut outcomes = BTreeSet::new();
        let mut schedule = Vec::new();
        // Each thread has one extra schedulable event: its exit, which
        // flushes its store buffer (the kernel's syscall-exit/interrupt
        // rule). Scheduling it separately lets another thread observe the
        // suspended thread's delayed stores still in flight — the property
        // §2.3 says OEMU restores under breakpoint-style scheduling.
        let counts: Vec<usize> = self.threads.iter().map(|t| t.len() + 1).collect();
        let mut pcs = vec![0; self.threads.len()];
        self.interleavings(&counts, &mut pcs, &mut schedule, &mut |sched| {
            for dmask in 0..(1u32 << stores.len()) {
                for vmask in 0..(1u32 << loads.len()) {
                    let regs = self.run_once(model, sched, &iids, &stores, dmask, &loads, vmask);
                    outcomes.insert(regs);
                }
            }
        });
        outcomes
    }

    /// Whether the register outcome `regs` is observable under TSO.
    pub fn reachable(&self, regs: &[u64]) -> bool {
        self.explore().contains(&regs.to_vec())
    }

    /// Whether the register outcome `regs` is observable under `model`.
    pub fn reachable_under(&self, model: MemoryModel, regs: &[u64]) -> bool {
        self.explore_under(model).contains(&regs.to_vec())
    }

    /// Runs one concrete execution: a fixed interleaving (`sched` is a
    /// sequence of thread ids) with fixed delay/version subsets.
    #[allow(clippy::too_many_arguments)]
    fn run_once(
        &self,
        model: MemoryModel,
        sched: &[usize],
        iids: &[Vec<Iid>],
        stores: &[(usize, usize)],
        dmask: u32,
        loads: &[(usize, usize)],
        vmask: u32,
    ) -> Vec<u64> {
        let engine = Engine::new_with_model(self.threads.len(), model);
        for (bit, &(t, o)) in stores.iter().enumerate() {
            if dmask & (1 << bit) != 0 {
                engine.delay_store_at(Tid(t), iids[t][o]);
            }
        }
        for (bit, &(t, o)) in loads.iter().enumerate() {
            if vmask & (1 << bit) != 0 {
                engine.read_old_value_at(Tid(t), iids[t][o]);
            }
        }
        let var_addr = |v: usize| 0x1000 + (v as u64) * 8;
        let mut regs = vec![0u64; self.nregs];
        let mut pcs = vec![0usize; self.threads.len()];
        for &t in sched {
            let o = pcs[t];
            pcs[t] += 1;
            let tid = Tid(t);
            if o == self.threads[t].len() {
                // The thread's exit event: flush its store buffer (the
                // "interrupt" rule of §3.1).
                engine.flush_thread(tid);
                continue;
            }
            let iid = iids[t][o];
            match self.threads[t][o] {
                Op::Store { var, val, ann } => engine.store(tid, iid, var_addr(var), val, ann),
                Op::Load { reg, var, ann } => {
                    regs[reg] = engine.load(tid, iid, var_addr(var), ann);
                }
                Op::Wmb => engine.smp_wmb(tid, iid),
                Op::Rmb => engine.smp_rmb(tid, iid),
                Op::Mb => engine.smp_mb(tid, iid),
                Op::Rmw { var } => {
                    engine.rmw(tid, iid, var_addr(var), |v| v + 1, RmwOrder::Relaxed);
                }
            }
        }
        regs
    }

    /// Recursively enumerates all interleavings (merge orders) of the
    /// threads' program-ordered operations.
    fn interleavings(
        &self,
        counts: &[usize],
        pcs: &mut Vec<usize>,
        schedule: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if pcs.iter().zip(counts).all(|(p, c)| p == c) {
            f(schedule);
            return;
        }
        for t in 0..counts.len() {
            if pcs[t] < counts[t] {
                pcs[t] += 1;
                schedule.push(t);
                self.interleavings(counts, pcs, schedule, f);
                schedule.pop();
                pcs[t] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod harness_tests {
    use super::*;

    #[test]
    fn single_thread_sequential_semantics() {
        // r0 = x after x=1: always 1, regardless of controls (forwarding).
        let t = Litmus {
            name: "self-read",
            threads: vec![vec![
                Op::Store {
                    var: 0,
                    val: 1,
                    ann: StoreAnn::Plain,
                },
                Op::Load {
                    reg: 0,
                    var: 0,
                    ann: LoadAnn::Plain,
                },
            ]],
            nvars: 1,
            nregs: 1,
        };
        let outcomes = t.explore();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes.contains(&vec![1]));
    }

    #[test]
    fn interleaving_count_is_binomial() {
        // 2 threads × 2 ops: C(4,2) = 6 interleavings.
        let t = Litmus {
            name: "count",
            threads: vec![vec![Op::Mb, Op::Mb], vec![Op::Mb, Op::Mb]],
            nvars: 0,
            nregs: 0,
        };
        let mut n = 0;
        t.interleavings(&[2, 2], &mut vec![0, 0], &mut Vec::new(), &mut |_| n += 1);
        assert_eq!(n, 6, "C(4, 2) merge orders of the raw ops");
    }

    #[test]
    fn outcomes_without_controls_include_all_sc_outcomes() {
        let t = tests::message_passing(tests::Barriers::None);
        let outcomes = t.explore();
        for sc in [[0u64, 0], [1, 1], [0, 1]] {
            assert!(outcomes.contains(&sc.to_vec()), "SC outcome {sc:?}");
        }
    }
}
