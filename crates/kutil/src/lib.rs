//! Zero-dependency utilities that keep the workspace hermetic.
//!
//! OZZ's premise is that a reordering schedule found once is reproducible
//! forever (§4.4: "OZZ can deterministically control the execution order").
//! That promise extends to the build: a campaign seed must mean the same
//! byte-for-byte `FoundBug` list on any machine, online or offline, today
//! or in five years. This crate removes every crates-io dependency the
//! workspace would otherwise need:
//!
//! - [`rng::DetRng`] — a SplitMix64-seeded xoshiro256** generator replacing
//!   `rand`. The stream is pinned by golden-value tests, so a refactor that
//!   silently changes campaign schedules fails CI.
//! - [`sync`] — `Mutex`/`Condvar` wrappers over `std::sync` with the
//!   `parking_lot` calling convention (`lock()` returns the guard directly,
//!   poisoning is ignored). A panicking oracle thread must not poison the
//!   crash-report sink it was about to write into.
//! - [`mod@bench`] — a minimal warmup + median-of-N timing harness replacing
//!   `criterion`, emitting one JSON line per measurement.
//! - [`chan`] — a poison-tolerant MPSC channel replacing `std::sync::mpsc`
//!   for the sharded campaign runner (epoch reports worker→coordinator,
//!   corpus broadcasts coordinator→worker).
//! - [`codec`] — a versioned line-oriented text codec replacing `serde`
//!   for durable artifacts (campaign checkpoints, the crash database).

#![deny(missing_docs)]

pub mod bench;
pub mod chan;
pub mod codec;
pub mod rng;
pub mod sync;

pub use rng::{splitmix64, DetRng};

/// Process-wide snapshot generation counter.
///
/// Every snapshot taken anywhere in the workspace (engine, kmem, fnreg,
/// lockdep, crash sink, machine) draws its generation id from this single
/// counter, so a generation names exactly one snapshot ever taken in this
/// process. Incremental restore keys its undo journal on these ids: a
/// restore whose generation is armed in the journal rolls back just the
/// mutations since that snapshot; any other generation (cross-machine
/// restore, superseded snapshot) is unambiguously a full-restore fallback —
/// two machines can never collide on an id. Generation 0 is reserved as
/// "never armed".
pub fn next_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// FNV-1a over a byte slice: the workspace's stable content fingerprint.
///
/// Used to pin machine-state digests inside serialized artifacts (golden
/// traces, `FoundBug` records) without embedding the full `state_digest`
/// text. The constants are the standard 64-bit FNV offset basis and prime,
/// so the value for a given byte string never changes across platforms or
/// releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod fnv_tests {
    use super::fnv1a64;

    /// Golden values from the FNV reference vectors: a transcription slip
    /// in the constants would silently unpin every stored digest.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a64(b"state A"), fnv1a64(b"state B"));
    }
}
