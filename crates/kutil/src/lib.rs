//! Zero-dependency utilities that keep the workspace hermetic.
//!
//! OZZ's premise is that a reordering schedule found once is reproducible
//! forever (§4.4: "OZZ can deterministically control the execution order").
//! That promise extends to the build: a campaign seed must mean the same
//! byte-for-byte `FoundBug` list on any machine, online or offline, today
//! or in five years. This crate removes every crates-io dependency the
//! workspace would otherwise need:
//!
//! - [`rng::DetRng`] — a SplitMix64-seeded xoshiro256** generator replacing
//!   `rand`. The stream is pinned by golden-value tests, so a refactor that
//!   silently changes campaign schedules fails CI.
//! - [`sync`] — `Mutex`/`Condvar` wrappers over `std::sync` with the
//!   `parking_lot` calling convention (`lock()` returns the guard directly,
//!   poisoning is ignored). A panicking oracle thread must not poison the
//!   crash-report sink it was about to write into.
//! - [`bench`] — a minimal warmup + median-of-N timing harness replacing
//!   `criterion`, emitting one JSON line per measurement.
//! - [`chan`] — a poison-tolerant MPSC channel replacing `std::sync::mpsc`
//!   for the sharded campaign runner (epoch reports worker→coordinator,
//!   corpus broadcasts coordinator→worker).

pub mod bench;
pub mod chan;
pub mod rng;
pub mod sync;

pub use rng::{splitmix64, DetRng};
