//! Deterministic pseudo-random generation (the workspace's `rand`).
//!
//! [`DetRng`] is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
//! the standard pairing: SplitMix64 expands a single `u64` seed into the
//! 256-bit state so that similar seeds (0, 1, 2, …) still produce
//! uncorrelated streams, and xoshiro256** provides the long-period
//! (2^256 − 1) stream. Both algorithms are public-domain reference code
//! reimplemented here; nothing about the stream depends on platform,
//! architecture, or library version — which is the point: a campaign seed
//! in a bug report must replay identically anywhere.
//!
//! The API mirrors the subset of `rand` the workspace used: `gen_range`
//! over half-open and inclusive integer ranges, `gen_bool`, Fisher–Yates
//! `shuffle`, and `choose`.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the seed expander (Vigna's reference constants).
///
/// Public because seed *derivation* is part of the workspace contract too:
/// the sharded campaign runner derives each shard's sub-seed from the
/// campaign seed with this exact function, so a shard's schedule is
/// reproducible from `(seed, shard_id)` alone.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic RNG: xoshiro256** seeded via SplitMix64.
///
/// The output stream for a given seed is part of the workspace's public
/// contract (campaign schedules derive from it) and is pinned by the
/// golden-value tests below.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next 64 uniformly-distributed bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly-distributed bits (upper half of the 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` by rejection sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng: empty range");
        // Rejection zone: discard draws above the largest multiple of
        // `bound`, so every residue is equally likely.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform sample from an integer range, half-open or inclusive:
    /// `rng.gen_range(0..4)`, `rng.gen_range(1..=4)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the same resolution `rand` uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly-chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }

    /// A generator for a derived stream: deterministic in (own stream,
    /// `salt`), independent enough to hand to a sub-task.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ salt.rotate_left(32))
    }

    /// The raw 256-bit xoshiro256** state, for checkpointing.
    ///
    /// Together with [`DetRng::from_state`] this lets a campaign freeze a
    /// generator mid-stream and resume it in another process with the
    /// continuation byte-identical to never having stopped — `new(seed)`
    /// alone cannot do that because it always restarts the stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a prior [`DetRng::state`] snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros: that is xoshiro256**'s single
    /// fixed point (the stream would be constant zero forever), and no
    /// seeded generator can ever reach it.
    pub fn from_state(s: [u64; 4]) -> DetRng {
        assert!(
            s != [0; 4],
            "DetRng: all-zero state is not a valid xoshiro256** state"
        );
        DetRng { s }
    }
}

/// Integer range types [`DetRng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "DetRng: empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "DetRng: empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the raw output stream. If this test fails, every seeded
    /// campaign schedule in the repository has silently changed — that is
    /// a breaking change to reproducibility, not a refactor detail.
    #[test]
    fn golden_stream_seed_zero() {
        let mut r = DetRng::new(0);
        let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
                13521403990117723737,
                18442103541295991498,
                7788427924976520344,
                9881088229871127103,
            ]
        );
    }

    /// Second golden seed: catches seeding bugs a single seed might mask
    /// (e.g. ignoring the seed entirely).
    #[test]
    fn golden_stream_seed_2024() {
        let mut r = DetRng::new(2024);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                1029197146548041518,
                14427268137155694693,
                1329179038587965441,
                2946237779985736811,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelated() {
        // SplitMix64 expansion must keep adjacent seeds' streams apart.
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    /// Range uniformity smoke test: a chi-squared-style bound on an 8-bin
    /// histogram. With 80_000 draws the expected count per bin is 10_000;
    /// a correct generator stays within ±3% with overwhelming margin.
    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = DetRng::new(7);
        let mut bins = [0u32; 8];
        for _ in 0..80_000 {
            bins[r.gen_range(0usize..8)] += 1;
        }
        for (i, &count) in bins.iter().enumerate() {
            assert!(
                (9_700..=10_300).contains(&count),
                "bin {i} count {count} outside uniformity bound"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = DetRng::new(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!(
            (29_000..=31_000).contains(&hits),
            "p=0.3 gave {hits}/100000"
        );
        let mut r = DetRng::new(9);
        assert_eq!((0..1000).filter(|_| r.gen_bool(0.0)).count(), 0);
        let mut r = DetRng::new(9);
        assert_eq!((0..1000).filter(|_| r.gen_bool(1.0)).count(), 1000);
    }

    /// No short cycles: the state must not revisit itself within a long
    /// prefix (xoshiro256**'s period is 2^256 − 1; a transcription bug —
    /// wrong rotation constant, dropped xor — typically collapses it).
    #[test]
    fn no_short_cycles() {
        let mut r = DetRng::new(123);
        let start = r.clone();
        for step in 1..=100_000u32 {
            r.next_u64();
            assert!(r != start, "state cycled after {step} steps");
        }
    }

    #[test]
    fn inclusive_and_exclusive_ranges_hit_bounds() {
        let mut r = DetRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(1u64..=4) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 4], "1..=4 never produced some value");
        for _ in 0..200 {
            let v = r.gen_range(0usize..3);
            assert!(v < 3, "0..3 produced {v}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        let mut va: Vec<u32> = (0..20).collect();
        let mut vb: Vec<u32> = (0..20).collect();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb, "same seed must shuffle identically");
        let mut sorted = va.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "elements lost");
        assert_ne!(
            va, sorted,
            "20 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = DetRng::new(13);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = *r.choose(&items).unwrap();
            seen[items.iter().position(|&x| x == v).unwrap()] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert!(r.choose::<u8>(&[]).is_none());
    }

    /// Checkpoint contract: a generator rebuilt from `state()` continues
    /// the stream exactly where the original left off.
    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut r = DetRng::new(2024);
        for _ in 0..37 {
            r.next_u64();
        }
        let mut resumed = DetRng::from_state(r.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), r.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_rejected() {
        let _ = DetRng::from_state([0; 4]);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = DetRng::new(17);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..1000).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
