//! A minimal MPSC channel (the workspace's `std::sync::mpsc`).
//!
//! The sharded campaign runner (`ozz::parallel`) needs exactly one
//! communication primitive: a bounded-complexity, unbounded-capacity
//! multi-producer single-consumer queue for shipping epoch reports from
//! shard workers to the coordinator, and one single-producer queue per
//! worker for the coordinator's corpus broadcasts. Rather than reach for
//! `std::sync::mpsc` (whose `Receiver` is `!Sync` and whose poisoning
//! semantics differ from the rest of the workspace), this module builds the
//! channel on the workspace's own poison-ignoring [`crate::sync`]
//! primitives, keeping the zero-dependency policy and the property that a
//! panicking worker never wedges the coordinator.
//!
//! Semantics:
//!
//! - [`Sender`] is `Clone`; dropping the last sender disconnects the
//!   channel and wakes any blocked receiver.
//! - [`Receiver::recv`] blocks until a message or disconnection;
//!   [`Receiver::try_recv`] never blocks.
//! - Messages arrive in FIFO order per sender, and in a single global FIFO
//!   order overall (one queue, one lock).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

/// Error returned by [`Sender::send`] when the receiver was dropped. The
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when every sender was dropped and
/// the queue is drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now; senders still exist.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half; clone freely across worker threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; exactly one per channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a connected `(Sender, Receiver)` pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking the receiver. Fails (returning the value)
    /// only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock();
        if !state.receiver_alive {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake a receiver blocked in recv() so it observes the hangup.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            self.shared.ready.wait(&mut state);
        }
    }

    /// Returns a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock();
        match state.queue.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Drains every message currently queued, without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.shared.state.lock();
        state.queue.drain(..).collect()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_thread() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_roundtrip() {
        let (tx, rx) = channel();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 100);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 100, "no message lost or duplicated");
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = channel::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        // Let the receiver block, then hang up.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_recv_reports_empty_vs_disconnected() {
        let (tx, rx) = channel::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn queued_messages_survive_sender_drop() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drain_takes_everything_queued() {
        let (tx, rx) = channel();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    /// Property harness: `nproducers` threads each send a seeded, randomly
    /// sized batch of `(producer, seq)` messages with random pacing, while
    /// the receiver interleaves `recv`, `try_recv`, and `drain`. Checks the
    /// channel's three contract properties on the full delivery transcript:
    /// per-producer FIFO order, no message lost, no message duplicated.
    fn multi_producer_property(seed: u64, nproducers: usize) {
        use crate::rng::DetRng;

        let mut rng = DetRng::new(seed);
        let counts: Vec<usize> = (0..nproducers)
            .map(|_| rng.gen_range(1usize..=200))
            .collect();
        let total: usize = counts.iter().sum();

        let (tx, rx) = channel::<(usize, usize)>();
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                let tx = tx.clone();
                let mut prng = rng.fork(p as u64);
                std::thread::spawn(move || {
                    for seq in 0..n {
                        tx.send((p, seq)).unwrap();
                        if prng.gen_bool(0.05) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        drop(tx);

        // Receiver mixes all three consumption APIs, seeded per run.
        let mut got: Vec<(usize, usize)> = Vec::with_capacity(total);
        loop {
            match rng.gen_range(0u32..3) {
                0 => match rx.recv() {
                    Ok(v) => got.push(v),
                    Err(RecvError) => break,
                },
                1 => match rx.try_recv() {
                    Ok(v) => got.push(v),
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                },
                _ => got.extend(rx.drain()),
            }
            if got.len() == total && rx.try_recv() == Err(TryRecvError::Disconnected) {
                break;
            }
        }
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(got.len(), total, "seed {seed}: delivery count");
        let mut next = vec![0usize; nproducers];
        for &(p, seq) in &got {
            assert_eq!(seq, next[p], "seed {seed}: producer {p} out of FIFO order");
            next[p] += 1;
        }
        // next[p] == counts[p] for all p ⇒ nothing lost; got.len() == total
        // with per-producer sequences exact ⇒ nothing duplicated.
        assert_eq!(next, counts, "seed {seed}: per-producer totals");
    }

    #[test]
    fn multi_producer_stress_is_lossless_and_ordered() {
        for seed in [0, 7, 2024] {
            multi_producer_property(seed, 6);
        }
    }

    #[test]
    fn single_producer_degenerate_case_holds() {
        multi_producer_property(42, 1);
    }

    /// Receiver drop races live senders: every send must either deliver
    /// before the drop or fail with its message handed back — never hang,
    /// never tear. Exercises the poison-tolerance path the campaign runner
    /// relies on when the coordinator exits early.
    #[test]
    fn receiver_drop_while_producers_send() {
        for seed in [1u64, 9, 77] {
            let (tx, rx) = channel::<usize>();
            let handles: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut refused = 0usize;
                        for i in 0..500 {
                            if tx.send(p * 1000 + i).is_err() {
                                refused += 1;
                            }
                        }
                        refused
                    })
                })
                .collect();
            drop(tx);
            // Consume a seeded prefix, then hang up mid-stream.
            let mut rng = crate::rng::DetRng::new(seed);
            let keep = rng.gen_range(0usize..100);
            let mut received = 0usize;
            while received < keep {
                match rx.recv() {
                    Ok(_) => received += 1,
                    Err(RecvError) => break,
                }
            }
            drop(rx);
            let refused: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(
                received + refused <= 4 * 500,
                "seed {seed}: more outcomes than sends"
            );
            // No hang is the main property: reaching this line means every
            // producer terminated despite the receiver vanishing.
        }
    }
}
