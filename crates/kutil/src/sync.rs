//! Poison-ignoring synchronization primitives (the workspace's
//! `parking_lot`).
//!
//! [`Mutex`] and [`Condvar`] wrap `std::sync` with two deliberate
//! differences, both matching the `parking_lot` convention the workspace
//! was written against:
//!
//! 1. **`lock()` returns the guard directly**, no `Result`. Poisoning is
//!    ignored: the simulated kernel's oracles (KASAN, lockdep, BUG_ON)
//!    report crashes by panicking inside test threads, and a panicked
//!    oracle must not wedge the crash-report sink or the scheduler state
//!    it was holding — the next reader continues with whatever state is
//!    there, exactly as `parking_lot` behaves.
//! 2. **`Condvar::wait` takes `&mut MutexGuard`** instead of consuming and
//!    returning the guard, so token-passing wait loops read naturally.
//!
//! Both types are `const`-constructible so they can back `static`s (the
//! IID registry).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose guard ignores poisoning.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock (a
    /// panic while held) is entered anyway — see the module docs.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
///
/// The guard is internally an `Option` only so [`Condvar::wait`] can move
/// the underlying std guard out and back while the caller keeps borrowing
/// this one; it is always `Some` outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable (usable in `static` initializers).
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring before returning. Spurious wakeups are possible; call
    /// from a predicate loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn const_static_mutex_works() {
        static S: Mutex<Option<u32>> = Mutex::new(None);
        *S.lock() = Some(5);
        assert_eq!(*S.lock(), Some(5));
    }

    /// The load-bearing divergence from std: a panic while holding the
    /// lock must not wedge later lockers.
    #[test]
    fn poisoned_lock_is_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("oracle fired while holding the report sink");
        })
        .join();
        assert_eq!(*m.lock(), 7, "post-panic lock must succeed");
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn condvar_wait_notify_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        std::thread::scope(|s| {
            s.spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            assert!(*ready);
        });
    }

    #[test]
    fn condvar_many_waiters() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = Arc::clone(&state);
                s.spawn(move || {
                    let (m, cv) = &*st;
                    let mut turn = m.lock();
                    *turn += 1;
                    cv.notify_all();
                    while *turn < 4 {
                        cv.wait(&mut turn);
                    }
                });
            }
        });
        assert_eq!(*state.0.lock(), 4);
    }
}
