//! Line-oriented text codec for durable campaign artifacts.
//!
//! Checkpoints and the crash database must survive the process that wrote
//! them and re-load byte-identically in another one, with zero crates-io
//! dependencies. This module is the shared serialization substrate: a
//! self-describing, versioned, line-oriented text format in the same
//! spirit as the `ozz-trace` format — human-inspectable with `less`,
//! diffable, and deliberately boring.
//!
//! Format rules:
//!
//! - The first line is a header: `<magic> v<version>`.
//! - Every subsequent line is `<key> <value>` (value may be empty) or a
//!   structural line: `begin <name>` / `end` for nesting, `eof` as the
//!   explicit terminator (truncated files are detected, not silently
//!   accepted).
//! - String values are escaped (`\\`, `\n`, `\r`) so arbitrary bug titles
//!   and barrier locations stay on one line.
//! - Embedded documents that have their own format (e.g. an `ozz-trace`
//!   text) are carried as *blobs*: a `<key> <line-count>` line followed by
//!   exactly that many raw, unescaped lines. Blob lines are copied
//!   verbatim, so nesting a whole trace file costs nothing and round-trips
//!   exactly.
//!
//! [`TextWriter`] and [`TextReader`] enforce the structure; parse errors
//! carry the 1-based line number of the offending line.

use std::fmt::Display;

/// Escapes a string value onto a single line (`\\`, `\n`, `\r`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. Returns `None` on a malformed escape sequence.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Serializes one document in the workspace text format.
///
/// The writer is append-only; [`TextWriter::finish`] seals the document
/// with the `eof` terminator and asserts every `begin` was matched by an
/// `end`, so a writer bug produces a panic at save time rather than an
/// unreadable artifact.
pub struct TextWriter {
    out: String,
    depth: usize,
}

impl TextWriter {
    /// Starts a document with header `<magic> v<version>`.
    pub fn new(magic: &str, version: u32) -> TextWriter {
        debug_assert!(!magic.contains(char::is_whitespace));
        TextWriter {
            out: format!("{magic} v{version}\n"),
            depth: 0,
        }
    }

    /// Writes `<key> <value>` using the value's `Display` form.
    ///
    /// The rendered value must not contain newlines; use
    /// [`TextWriter::str_field`] for arbitrary strings.
    pub fn field(&mut self, key: &str, value: impl Display) {
        debug_assert!(!key.contains(char::is_whitespace));
        let v = value.to_string();
        debug_assert!(!v.contains('\n'), "field {key}: use str_field");
        self.out.push_str(key);
        self.out.push(' ');
        self.out.push_str(&v);
        self.out.push('\n');
    }

    /// Writes a `u64` as fixed-width hex (for digests and RNG state).
    pub fn hex_field(&mut self, key: &str, value: u64) {
        self.field(key, format_args!("{value:016x}"));
    }

    /// Writes an arbitrary string, escaped onto one line.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.field(key, escape(value));
    }

    /// Writes an embedded document verbatim as a line-counted blob.
    pub fn blob(&mut self, key: &str, text: &str) {
        let body = text.strip_suffix('\n').unwrap_or(text);
        let count = if body.is_empty() {
            0
        } else {
            body.lines().count()
        };
        self.field(key, count);
        if count > 0 {
            self.out.push_str(body);
            self.out.push('\n');
        }
    }

    /// Opens a nested section: `begin <name>`.
    pub fn begin(&mut self, name: &str) {
        self.field("begin", name);
        self.depth += 1;
    }

    /// Closes the innermost section.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    pub fn end(&mut self) {
        assert!(self.depth > 0, "TextWriter: end without begin");
        self.out.push_str("end\n");
        self.depth -= 1;
    }

    /// Seals the document with `eof` and returns the full text.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open.
    pub fn finish(mut self) -> String {
        assert_eq!(self.depth, 0, "TextWriter: unclosed section");
        self.out.push_str("eof\n");
        self.out
    }
}

/// Parses one document written by [`TextWriter`].
///
/// Every accessor returns `Err` with the 1-based line number on a
/// structural mismatch, so a hand-edited or truncated artifact reports
/// *where* it broke.
pub struct TextReader<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

/// A structured parse error: what was expected, what was found, where.
pub type ParseError = String;

impl<'a> TextReader<'a> {
    /// Opens a document, validating the `<magic> v<version>` header.
    ///
    /// Returns the reader positioned after the header, plus the version
    /// number so callers can branch on format revisions.
    pub fn new(text: &'a str, magic: &str) -> Result<(TextReader<'a>, u32), ParseError> {
        let lines: Vec<&str> = text.lines().collect();
        let header = lines
            .first()
            .ok_or_else(|| format!("{magic}: empty document"))?;
        let version = header
            .strip_prefix(magic)
            .and_then(|rest| rest.strip_prefix(" v"))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| format!("{magic}: bad header {header:?}"))?;
        Ok((TextReader { lines, pos: 1 }, version))
    }

    fn line_no(&self) -> usize {
        self.pos + 1
    }

    fn next_line(&mut self) -> Result<&'a str, ParseError> {
        let line = self
            .lines
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of document".to_string())?;
        self.pos += 1;
        Ok(line)
    }

    /// The key of the next line without consuming it (`None` at EOF).
    pub fn peek_key(&self) -> Option<&'a str> {
        let line = self.lines.get(self.pos)?;
        Some(line.split(' ').next().unwrap_or(line))
    }

    /// Consumes `<key> <value>` and returns the raw value text.
    pub fn field(&mut self, key: &str) -> Result<&'a str, ParseError> {
        let at = self.line_no();
        let line = self.next_line()?;
        match line.split_once(' ') {
            Some((k, v)) if k == key => Ok(v),
            _ if line == key => Ok(""),
            _ => Err(format!("line {at}: expected `{key} ...`, got {line:?}")),
        }
    }

    /// Consumes a field and parses it with `FromStr`.
    pub fn parse_field<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, ParseError> {
        let at = self.line_no();
        let v = self.field(key)?;
        v.parse()
            .map_err(|_| format!("line {at}: bad value {v:?} for `{key}`"))
    }

    /// Consumes a fixed-width hex `u64` field written by
    /// [`TextWriter::hex_field`].
    pub fn hex_field(&mut self, key: &str) -> Result<u64, ParseError> {
        let at = self.line_no();
        let v = self.field(key)?;
        u64::from_str_radix(v, 16).map_err(|_| format!("line {at}: bad hex {v:?} for `{key}`"))
    }

    /// Consumes an escaped string field written by
    /// [`TextWriter::str_field`].
    pub fn str_field(&mut self, key: &str) -> Result<String, ParseError> {
        let at = self.line_no();
        let v = self.field(key)?;
        unescape(v).ok_or_else(|| format!("line {at}: bad escape in `{key}` value {v:?}"))
    }

    /// Consumes a line-counted blob and returns the embedded document
    /// (with a trailing newline when non-empty).
    pub fn blob(&mut self, key: &str) -> Result<String, ParseError> {
        let count: usize = self.parse_field(key)?;
        let mut out = String::new();
        for _ in 0..count {
            out.push_str(self.next_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Consumes `begin <name>`.
    pub fn begin(&mut self, name: &str) -> Result<(), ParseError> {
        let at = self.line_no();
        let v = self.field("begin")?;
        if v == name {
            Ok(())
        } else {
            Err(format!(
                "line {at}: expected `begin {name}`, got `begin {v}`"
            ))
        }
    }

    /// Consumes the `end` of the innermost section.
    pub fn end(&mut self) -> Result<(), ParseError> {
        let at = self.line_no();
        let line = self.next_line()?;
        if line == "end" {
            Ok(())
        } else {
            Err(format!("line {at}: expected `end`, got {line:?}"))
        }
    }

    /// Consumes the `eof` terminator and asserts nothing follows it.
    pub fn expect_eof(mut self) -> Result<(), ParseError> {
        let at = self.line_no();
        let line = self.next_line()?;
        if line != "eof" {
            return Err(format!("line {at}: expected `eof`, got {line:?}"));
        }
        if self.pos < self.lines.len() {
            return Err(format!("line {}: trailing data after eof", self.line_no()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        for s in ["", "plain", "a\nb", "tab\tkept", "back\\slash", "\r\n\\n"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert!(unescape("dangling\\").is_none());
        assert!(unescape("bad\\q").is_none());
    }

    #[test]
    fn document_roundtrip() {
        let mut w = TextWriter::new("ozz-test", 1);
        w.field("count", 3u64);
        w.hex_field("digest", 0xdead_beef);
        w.str_field("title", "multi\nline \\ title");
        w.str_field("empty", "");
        w.begin("section");
        w.field("inner", 42u32);
        w.blob("trace", "ozz-trace v1\nstore a\nend\n");
        w.blob("nothing", "");
        w.end();
        let text = w.finish();

        let (mut r, version) = TextReader::new(&text, "ozz-test").unwrap();
        assert_eq!(version, 1);
        assert_eq!(r.parse_field::<u64>("count").unwrap(), 3);
        assert_eq!(r.hex_field("digest").unwrap(), 0xdead_beef);
        assert_eq!(r.str_field("title").unwrap(), "multi\nline \\ title");
        assert_eq!(r.str_field("empty").unwrap(), "");
        r.begin("section").unwrap();
        assert_eq!(r.parse_field::<u32>("inner").unwrap(), 42);
        assert_eq!(r.blob("trace").unwrap(), "ozz-trace v1\nstore a\nend\n");
        assert_eq!(r.blob("nothing").unwrap(), "");
        r.end().unwrap();
        r.expect_eof().unwrap();
    }

    #[test]
    fn blob_lines_are_verbatim() {
        // Blob content must not be escaped or trimmed: embedded trace
        // lines can contain spaces and backslash-free escapes.
        let mut w = TextWriter::new("t", 1);
        w.blob("b", "  indented \\ raw\nsecond line");
        let text = w.finish();
        let (mut r, _) = TextReader::new(&text, "t").unwrap();
        assert_eq!(r.blob("b").unwrap(), "  indented \\ raw\nsecond line\n");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "t v1\ncount 3\neof\n";
        let (mut r, _) = TextReader::new(text, "t").unwrap();
        let err = r.field("other").unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        let (r2, _) = TextReader::new("t v1\nextra x\n", "t").unwrap();
        assert!(r2.expect_eof().unwrap_err().contains("expected `eof`"));

        assert!(TextReader::new("wrong v1\n", "t").is_err());
        assert!(TextReader::new("t vx\n", "t").is_err());
        assert!(TextReader::new("", "t").is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = TextWriter::new("t", 1);
        w.field("a", 1);
        w.blob("b", "one\ntwo\n");
        let full = w.finish();
        // Drop the eof line and one blob line: both must fail loudly.
        let no_eof = full.strip_suffix("eof\n").unwrap();
        let (mut r, _) = TextReader::new(no_eof, "t").unwrap();
        r.field("a").unwrap();
        r.blob("b").unwrap();
        assert!(r.expect_eof().is_err());

        let cut = "t v1\na 1\nb 2\none\n";
        let (mut r, _) = TextReader::new(cut, "t").unwrap();
        r.field("a").unwrap();
        assert!(r.blob("b").is_err());
    }

    #[test]
    #[should_panic(expected = "unclosed section")]
    fn unbalanced_sections_panic_at_finish() {
        let mut w = TextWriter::new("t", 1);
        w.begin("s");
        let _ = w.finish();
    }
}
