//! Minimal timing harness (the workspace's `criterion`).
//!
//! The `crates/bench` benches only need: warmup, repeated timed samples,
//! a robust central estimate, and machine-readable output. This harness
//! provides exactly that — warmup for a configured duration, N samples of
//! auto-sized batches, **median**-of-samples as the reported figure (robust
//! against scheduler noise, unlike the mean) — and prints one JSON line per
//! measurement plus a human-readable summary line:
//!
//! ```text
//! {"group":"oemu_ops","name":"store_commit","median_ns":18.4,...}
//! oemu_ops/store_commit            median 18.4 ns/iter (30 samples)
//! ```
//!
//! The API deliberately mirrors the criterion subset the benches used
//! (`benchmark_group`, `bench_function`, `Bencher::iter`) so the bench
//! sources read the same as before the hermetic migration.

use std::time::{Duration, Instant};

/// A named group of measurements sharing sample configuration.
pub struct Group {
    name: String,
    samples: usize,
    warmup: Duration,
    measurement: Duration,
    last_median_ns: Option<f64>,
}

/// Creates a measurement group. Mirrors criterion's `benchmark_group`.
pub fn benchmark_group(name: &str) -> Group {
    Group {
        name: name.to_string(),
        samples: 30,
        warmup: Duration::from_millis(150),
        measurement: Duration::from_millis(600),
        last_median_ns: None,
    }
}

impl Group {
    /// Number of timed samples per measurement (median is taken of these).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 3, "need at least 3 samples for a meaningful median");
        self.samples = n;
        self
    }

    /// Total time budget for the timed samples of one measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Untimed warmup duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Runs one measurement. The closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`] exactly once with the operation under test;
    /// setup code before the `iter` call is untimed.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        let m = b
            .result
            .unwrap_or_else(|| panic!("bench_function {name:?} never called Bencher::iter"));
        self.last_median_ns = Some(m.median_ns);
        self.report(name, &m);
        self
    }

    /// Median of the most recent measurement, in nanoseconds per iteration.
    /// Lets a bench binary derive throughput figures (items/sec) from a
    /// measurement instead of re-timing it.
    pub fn last_median_ns(&self) -> Option<f64> {
        self.last_median_ns
    }

    /// [`Group::bench_function`] with a parameter, labelled `name/param`.
    pub fn bench_with_input<I>(
        &mut self,
        name: &str,
        param: &str,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(&format!("{name}/{param}"), |b| f(b, input))
    }

    /// No-op, kept so bench sources keep their criterion shape.
    pub fn finish(&mut self) {}

    fn report(&self, name: &str, m: &Measurement) {
        println!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            self.name, name, m.median_ns, m.min_ns, m.max_ns, m.samples, m.iters_per_sample
        );
        println!(
            "{:<40} median {} ({} samples)",
            format!("{}/{}", self.name, name),
            format_ns(m.median_ns),
            m.samples
        );
    }
}

struct Measurement {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Handed to the measurement closure; times the operation under test.
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `f`: warmup until the warmup budget elapses (also sizing
    /// the batch), then `samples` timed batches; records median/min/max
    /// per-iteration nanoseconds. Return values are passed through
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: run until the budget elapses, counting iterations to
        // size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        // Size batches so all samples together fill the measurement budget.
        let batch_secs = self.measurement.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((batch_secs / per_iter) as u64).max(1);

        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            sample_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            (sample_ns[sample_ns.len() / 2 - 1] + sample_ns[sample_ns.len() / 2]) / 2.0
        };
        self.result = Some(Measurement {
            median_ns,
            min_ns: sample_ns[0],
            max_ns: sample_ns[sample_ns.len() - 1],
            samples: sample_ns.len(),
            iters_per_sample,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} us/iter", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_without_panicking() {
        let mut g = benchmark_group("selftest");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        assert!(g.last_median_ns().is_none());
        g.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(3);
                x
            });
        });
        assert!(g.last_median_ns().unwrap() > 0.0);
        g.finish();
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // Directly exercise the sample math: an artificial closure whose
        // cost is constant gives a tight min/median spread.
        let mut b = Bencher {
            warmup: Duration::from_millis(2),
            measurement: Duration::from_millis(10),
            samples: 5,
            result: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let m = b.result.unwrap();
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert_eq!(m.samples, 5);
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn forgetting_iter_is_detected() {
        benchmark_group("selftest").bench_function("noop", |_b| {});
    }
}
