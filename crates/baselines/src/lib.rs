//! Baseline tools OZZ is compared against in the paper.
//!
//! - [`interleave`]: a Syzkaller-style concurrency fuzzer that controls
//!   thread interleaving but performs **no** memory-access reordering — the
//!   §6.3.2 throughput baseline, and the demonstration that interleaving
//!   alone cannot expose OOO bugs (§2.3).
//! - [`invitro`]: the in-vitro (offline trace analysis) approach of §3/§7:
//!   it collects access traces after execution and searches them for
//!   reorderable publication patterns, but has no kernel runtime context,
//!   so it over-approximates and cannot confirm consequences.
//! - [`kcsan`]: a KCSAN-like sampling watchpoint race detector (§7): it
//!   stalls one access at a time and reports concurrent accesses to the
//!   same location, skipping `READ_ONCE`/`WRITE_ONCE`-annotated accesses —
//!   reproducing both of the paper's case-study observations (the
//!   annotation mis-fix silences it; lock-protected reorder bugs have no
//!   data race at all).
//! - [`ofence`]: the OFence paired-barrier static pattern matcher (§6.4):
//!   it flags an ordering-sensitive code pair only when exactly one half of
//!   a standard barrier pair is present.

pub mod interleave;
pub mod invitro;
pub mod kcsan;
pub mod ofence;
