//! Interleaving-only concurrency fuzzer (the Syzkaller-style baseline).
//!
//! This fuzzer has everything OZZ has — syscall templates, deterministic
//! scheduling, breakpoints, the kernel oracles — *except* OEMU's reordering
//! controls. §2.3's argument is that such tools cannot find OOO bugs: a
//! breakpoint-driven context switch imposes in-order memory visibility, so
//! the buggy reorderings never occur. The test suite demonstrates exactly
//! that: over the same seeded kernels where OZZ finds every bug, this
//! baseline finds none.

use std::collections::BTreeMap;

use kernelsim::{execute, BugSwitches, ExecRequest, Kctx};
use ksched::{BreakWhen, Breakpoint, SchedulePlan};
use oemu::Tid;
use ozz::profile_sti;
use ozz::sti::StiGen;

/// Statistics of an interleaving-only campaign.
#[derive(Clone, Debug, Default)]
pub struct InterleaveStats {
    /// Programs generated.
    pub stis_run: u64,
    /// Concurrent tests executed.
    pub tests_run: u64,
}

/// The interleaving-only fuzzer.
pub struct InterleaveFuzzer {
    bugs: BugSwitches,
    gen: StiGen,
    max_points_per_pair: usize,
    found: BTreeMap<String, u64>,
    stats: InterleaveStats,
}

impl InterleaveFuzzer {
    /// Creates a fuzzer over the given kernel build.
    pub fn new(seed: u64, bugs: BugSwitches) -> Self {
        InterleaveFuzzer {
            bugs,
            gen: StiGen::new(seed),
            max_points_per_pair: 8,
            found: BTreeMap::new(),
            stats: InterleaveStats::default(),
        }
    }

    /// One iteration: generate an STI, then for every syscall pair try a
    /// context switch at each of the first syscall's access sites — full
    /// interleaving coverage, zero reordering.
    pub fn step(&mut self) -> usize {
        let sti = self.gen.generate();
        self.stats.stis_run += 1;
        let traces = profile_sti(&sti, self.bugs.clone());
        let mut new = 0;
        for i in 0..sti.calls.len() {
            for j in (i + 1)..sti.calls.len() {
                let points: Vec<_> = traces[i]
                    .events
                    .iter()
                    .filter_map(|e| e.as_access().map(|a| a.iid))
                    .take(self.max_points_per_pair)
                    .collect();
                for point in points {
                    self.stats.tests_run += 1;
                    let k = Kctx::new(self.bugs.clone());
                    for (idx, &call) in sti.calls.iter().enumerate().take(j) {
                        if idx != i {
                            kernelsim::run_one(&k, Tid(0), call);
                        }
                    }
                    let plan = SchedulePlan {
                        first: Tid(0),
                        breakpoint: Some(Breakpoint {
                            iid: point,
                            when: BreakWhen::After,
                            hit: 1,
                        }),
                    };
                    let out =
                        execute(&k, ExecRequest::live(plan, sti.calls[i], sti.calls[j])).outcome;
                    for crash in out.crashes {
                        if !self.found.contains_key(&crash.title) {
                            new += 1;
                        }
                        *self.found.entry(crash.title).or_insert(0) += 1;
                    }
                }
            }
        }
        new
    }

    /// Unique crash titles found (should stay empty on OOO-only kernels).
    pub fn found(&self) -> &BTreeMap<String, u64> {
        &self.found
    }

    /// Campaign statistics.
    pub fn stats(&self) -> &InterleaveStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_alone_finds_no_ooo_bugs() {
        // The central §2.3 claim: the all-bugs kernel survives pure
        // interleaving exploration because every seeded bug needs a memory
        // access reordering to manifest.
        let mut f = InterleaveFuzzer::new(3, BugSwitches::all());
        for _ in 0..8 {
            f.step();
        }
        assert!(f.stats().tests_run > 50, "meaningful exploration happened");
        assert!(
            f.found().is_empty(),
            "no OOO bug manifests without reordering: {:?}",
            f.found()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut f = InterleaveFuzzer::new(seed, BugSwitches::all());
            f.step();
            f.stats().tests_run
        };
        assert_eq!(run(5), run(5));
    }
}
