//! A KCSAN-like sampling watchpoint race detector (§7 comparison).
//!
//! KCSAN's mechanism: stall one memory access on a watchpoint and report if
//! another CPU accesses the same location concurrently; accesses annotated
//! with `READ_ONCE`/`WRITE_ONCE` or atomics are considered *marked* and are
//! not watched. This module reproduces that mechanism on the simulated
//! kernel: for each plain access of the writer syscall, install a
//! breakpoint before it (the stall), run the reader concurrently, and
//! report any plain reader access to the stalled address.
//!
//! The paper's three observations fall out of this model (§7):
//!
//! 1. KCSAN delays a *single unannotated* access; OZZ reorders many,
//!    including annotated ones.
//! 2. KCSAN cannot see races whose accesses never overlap in a legal
//!    in-order execution — the RDS custom lock (Figure 8) has **no data
//!    race**, yet its OOO bug is real.
//! 3. Marking accesses (`WRITE_ONCE`) silences KCSAN without fixing the
//!    ordering — the Figure 7 mis-fix: after the annotation patch, KCSAN
//!    reports nothing on the TLS path while the OOO bug remains.

use kernelsim::{execute, BugId, BugSwitches, ExecRequest, Kctx};
use ksched::{BreakWhen, Breakpoint, SchedulePlan};
use oemu::{AccessKind, AccessRecord, Tid, TraceEvent};
use ozz::profile_sti_on;
use ozz::sti::{known_bug_sti, Sti};

/// One data race KCSAN would report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Stalled (watched) writer-side access.
    pub watched: AccessRecord,
    /// The racing reader-side access.
    pub racing: AccessRecord,
}

/// Whether an access is *unmarked* (KCSAN watches only plain accesses; we
/// conservatively approximate annotation by re-profiling with barrier
/// records: annotated accesses carry an adjacent annotation barrier).
fn is_plain(events: &[TraceEvent], idx: usize) -> bool {
    let Some(acc) = events[idx].as_access() else {
        return false;
    };
    if acc.kind != AccessKind::Load && acc.kind != AccessKind::Store {
        return false; // atomics are marked
    }
    // An annotated access is immediately preceded (release) or followed
    // (acquire/READ_ONCE) by its annotation barrier with the same iid.
    let before = idx
        .checked_sub(1)
        .and_then(|i| events[i].as_barrier())
        .is_some_and(|b| b.iid == acc.iid);
    let after = events
        .get(idx + 1)
        .and_then(|e| e.as_barrier())
        .is_some_and(|b| b.iid == acc.iid);
    !(before || after)
}

/// Runs the KCSAN procedure on one (writer, reader) syscall pair over the
/// given kernel build: every plain writer access is watched in turn.
pub fn scan_pair(bugs: BugSwitches, sti: &Sti, wi: usize, ri: usize) -> Vec<RaceReport> {
    let kp = Kctx::new(bugs.clone());
    let traces = profile_sti_on(&kp, sti);
    let writer_events = &traces[wi].events;
    let mut reports = Vec::new();
    for (idx, event) in writer_events.iter().enumerate() {
        let Some(watched) = event.as_access() else {
            continue;
        };
        if !is_plain(writer_events, idx) {
            continue;
        }
        // Stall the writer at this access; run the reader to completion.
        let k = Kctx::new(bugs.clone());
        for (s, &call) in sti.calls.iter().enumerate().take(ri) {
            if s != wi {
                kernelsim::run_one(&k, Tid(0), call);
            }
        }
        k.engine.set_profiling(true);
        let plan = SchedulePlan {
            first: Tid(0),
            breakpoint: Some(Breakpoint {
                iid: watched.iid,
                when: BreakWhen::Before,
                hit: occurrence(writer_events, idx),
            }),
        };
        execute(&k, ExecRequest::live(plan, sti.calls[wi], sti.calls[ri]));
        let reader_profile = k.engine.take_profile(Tid(1));
        k.engine.set_profiling(false);
        for (ridx, re) in reader_profile.events.iter().enumerate() {
            let Some(racc) = re.as_access() else { continue };
            if racc.addr == watched.addr
                && (racc.kind.writes() || watched.kind.writes())
                && is_plain(&reader_profile.events, ridx)
            {
                reports.push(RaceReport {
                    watched: *watched,
                    racing: *racc,
                });
            }
        }
    }
    reports.sort_by_key(|r| (r.watched.iid, r.racing.iid));
    reports.dedup_by_key(|r| (r.watched.iid, r.racing.iid));
    reports
}

fn occurrence(events: &[TraceEvent], idx: usize) -> u32 {
    let target = events[idx].as_access().expect("access");
    events[..=idx]
        .iter()
        .filter_map(TraceEvent::as_access)
        .filter(|a| a.iid == target.iid)
        .count() as u32
}

/// Whether KCSAN reports any data race on a known bug's repro pair.
pub fn bug_has_visible_race(bug: BugId) -> bool {
    let sti = known_bug_sti(bug).expect("known bug input");
    !scan_pair(BugSwitches::only([bug]), &sti, 0, 1).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelsim::Syscall;

    #[test]
    fn kcsan_sees_the_watch_queue_head_race() {
        // Figure 1's `head` is accessed plain on both sides: KCSAN reports
        // the race (this is the data race the upstream annotation patches
        // chased) — but a race report says nothing about which reordering
        // crashes.
        assert!(bug_has_visible_race(BugId::KnownWatchQueuePost));
    }

    #[test]
    fn kcsan_misses_the_tls_err_annotated_path() {
        // tls_err_abort publishes through WRITE_ONCE(sk->sk_done) and the
        // poll side is READ_ONCE: the only racing pair is marked, so KCSAN
        // is silent — while OZZ reproduces the wrong-value bug (§6.2).
        let sti = known_bug_sti(BugId::KnownTlsErr).unwrap();
        let reports = scan_pair(BugSwitches::only([BugId::KnownTlsErr]), &sti, 0, 1);
        // The only shared plain access pair is sk_err (write) vs sk_err
        // (read) — but the reader only touches sk_err after observing done,
        // which cannot have happened while the writer is stalled before it.
        assert!(reports.is_empty(), "annotation silences KCSAN: {reports:?}");
    }

    #[test]
    fn kcsan_finds_no_race_in_the_rds_lock() {
        // Case study 2 (Figure 8): the custom bit lock means the critical
        // sections never overlap in any in-order execution — no data race
        // exists, and KCSAN is structurally blind to the OOO bug.
        let sti = Sti {
            calls: vec![Syscall::RdsSendXmit, Syscall::RdsLoopXmit],
        };
        let reports = scan_pair(BugSwitches::only([BugId::RdsClearBit]), &sti, 0, 1);
        assert!(
            reports.is_empty(),
            "no data race under the lock: {reports:?}"
        );
    }

    #[test]
    fn kcsan_is_silent_on_the_tls_mis_fix() {
        // Case study 1 (Figure 7 / Bug #9): after the WRITE_ONCE/READ_ONCE
        // patch, the sk_prot accesses are marked; the unpublished-context
        // accesses never overlap while the writer is stalled pre-publication.
        let sti = Sti {
            calls: vec![Syscall::TlsInit { fd: 0 }, Syscall::SetSockOpt { fd: 0 }],
        };
        let reports = scan_pair(BugSwitches::only([BugId::TlsSkProt]), &sti, 0, 1);
        assert!(
            reports.is_empty(),
            "the mis-fix silences KCSAN while the OOO bug remains: {reports:?}"
        );
    }
}
