//! In-vitro (offline) out-of-order analysis — the approach OZZ improves on.
//!
//! Previous systems (§3, §7: CLAP, adversarial memory, CDSChecker, ...)
//! collect memory-access traces *after* running the target and reason about
//! reorderings offline. Applied to a kernel, the trace contains addresses
//! and values but none of the runtime context — the allocator's freed list,
//! the lock state, what a zero at some address *means* — so the analysis
//! (a) over-approximates: every reorderable publication pattern is a
//! candidate, harmful or not; and (b) cannot confirm consequences such as
//! use-after-free, which need the in-vivo oracles.
//!
//! The analyzer here implements the standard offline pattern search: find
//! `W(A) -> W(B)` in one trace and `R(B) -> R(A)` in the other with no
//! intervening barrier, and report the candidate reordering. The bench
//! harness compares its candidate count against the subset OZZ confirms
//! in vivo.

use oemu::{AccessKind, Iid, TraceEvent};

/// One candidate reordering flagged by the offline analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The earlier store (whose delay would expose the pattern).
    pub store_iid: Iid,
    /// The publication store the reader observed.
    pub publish_iid: Iid,
    /// Address of the earlier store.
    pub data_addr: u64,
    /// Address of the publication.
    pub publish_addr: u64,
}

/// Offline analysis of one syscall pair's traces: returns all candidate
/// store-store/load-load reordering hazards, without any judgement of
/// harmfulness (the in-vitro limitation).
pub fn analyze(writer: &[TraceEvent], reader: &[TraceEvent]) -> Vec<Candidate> {
    let mut candidates = Vec::new();
    // Collect the reader's loaded addresses in program order.
    let reader_loads: Vec<(usize, u64)> = reader
        .iter()
        .filter_map(TraceEvent::as_access)
        .filter(|a| a.kind == AccessKind::Load)
        .enumerate()
        .map(|(i, a)| (i, a.addr))
        .collect();
    // Walk the writer: a store W(A) followed by a store W(B) with no
    // store-ordering barrier between them is reorderable; if the reader
    // loads B before A, the reordering is observable.
    let writer_events: Vec<&TraceEvent> = writer.iter().collect();
    for (i, ei) in writer_events.iter().enumerate() {
        let Some(a) = ei.as_access().filter(|a| a.kind == AccessKind::Store) else {
            continue;
        };
        let mut barrier_between = false;
        for ej in writer_events.iter().skip(i + 1) {
            match ej {
                TraceEvent::Barrier(b) if b.kind.orders_stores() => barrier_between = true,
                TraceEvent::Access(bacc) if bacc.kind == AccessKind::Store => {
                    if barrier_between || bacc.addr == a.addr {
                        continue;
                    }
                    // Reader observes B then A?
                    let b_pos = reader_loads.iter().find(|(_, addr)| *addr == bacc.addr);
                    let a_pos = reader_loads.iter().find(|(_, addr)| *addr == a.addr);
                    if let (Some((bp, _)), Some((ap, _))) = (b_pos, a_pos) {
                        if bp <= ap {
                            candidates.push(Candidate {
                                store_iid: a.iid,
                                publish_iid: bacc.iid,
                                data_addr: a.addr,
                                publish_addr: bacc.addr,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    candidates.sort_by_key(|c| (c.store_iid, c.publish_iid));
    candidates.dedup();
    candidates
}

/// Comparison row produced by the bench harness: how many candidates the
/// offline analysis flags for one bug's repro pair, and whether any of them
/// is the real bug (confirmed in vivo by OZZ).
#[derive(Clone, Debug)]
pub struct InVitroRow {
    /// Bug under analysis.
    pub bug: kernelsim::BugId,
    /// Candidates flagged offline.
    pub candidates: usize,
    /// Whether OZZ confirms a crash for this pair in vivo.
    pub confirmed_in_vivo: bool,
}

/// Runs the offline analysis for one known bug's repro input.
pub fn analyze_bug(bug: kernelsim::BugId) -> InVitroRow {
    let sti = ozz::sti::known_bug_sti(bug).expect("known bug input");
    let bugs = kernelsim::BugSwitches::only([bug]);
    let k = kernelsim::Kctx::new(bugs);
    if bug == kernelsim::BugId::KnownSbitmap {
        // Give the offline analysis its best case: the shared-slot trace.
        k.set_migration_override(true);
    }
    let traces = ozz::profile_sti_on(&k, &sti);
    let n = sti.calls.len();
    let mut candidates = 0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                candidates += analyze(&traces[i].events, &traces[j].events).len();
            }
        }
    }
    let confirmed = ozz::repro::reproduce(bug, bug == kernelsim::BugId::KnownSbitmap).reproduced;
    InVitroRow {
        bug,
        candidates,
        confirmed_in_vivo: confirmed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelsim::{BugId, BugSwitches, Kctx};
    use ozz::profile_sti_on;
    use ozz::sti::known_bug_sti;

    fn traces_for(bug: BugId) -> Vec<ozz::SyscallTrace> {
        let sti = known_bug_sti(bug).unwrap();
        let k = Kctx::new(BugSwitches::only([bug]));
        profile_sti_on(&k, &sti)
    }

    #[test]
    fn offline_analysis_flags_the_vlan_publication() {
        let traces = traces_for(BugId::KnownVlan);
        let candidates = analyze(&traces[0].events, &traces[1].events);
        assert!(
            !candidates.is_empty(),
            "the unbarriered publication is a visible pattern"
        );
    }

    #[test]
    fn barriers_suppress_candidates() {
        // On the *fixed* kernel, the wmb sits between the stores and the
        // pattern disappears.
        let sti = known_bug_sti(BugId::KnownVlan).unwrap();
        let k = Kctx::new(BugSwitches::none());
        let traces = profile_sti_on(&k, &sti);
        let candidates = analyze(&traces[0].events, &traces[1].events);
        assert!(candidates.is_empty(), "{candidates:?}");
    }

    #[test]
    fn offline_analysis_overapproximates() {
        // The offline trace has no oracle context, so candidate count only
        // says "reorderable", not "harmful": across the Table 4 bugs the
        // candidate sets are non-empty even where the harmful reordering is
        // a single specific pair.
        let row = analyze_bug(BugId::KnownWatchQueuePost);
        assert!(row.candidates >= 1);
        assert!(row.confirmed_in_vivo);
    }

    #[test]
    fn empty_traces_have_no_candidates() {
        assert!(analyze(&[], &[]).is_empty());
    }
}
