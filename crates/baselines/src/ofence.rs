//! An OFence-style paired-barrier static matcher (§6.4 comparison).
//!
//! OFence (EuroSys '23) rests on one observation: memory barriers come in
//! pairs — a store-side barrier (`smp_wmb`, `smp_store_release`) in the
//! writer must be matched by a load-side barrier (`smp_rmb`,
//! `smp_load_acquire`) in the reader, and vice versa. Its static analysis
//! flags code where exactly one half of such a pair is present.
//!
//! The matcher here applies the same criterion to the *static barrier
//! facts* of each seeded bug's buggy variant — which half of the pair the
//! pre-fix code retained on the publication chain. (The original OFence is
//! closed source; the paper itself resorts to counting which of its bugs
//! "fall into predefined patterns", which is precisely this criterion.)
//!
//! The outcome reproduces §6.4: the bugs OZZ found mostly miss **both**
//! halves (nothing to pair: Bug #2, #4, #7, #9, #10), use non-pattern
//! constructs (the Bug #1 custom bit lock, the Bug #3 pre-poisoned debug
//! slot, Bug #6's callback chain), and only three retain an unpaired half —
//! so 8 of 11 are not detectable by pattern matching.

use kernelsim::BugId;

/// Static barrier facts of one bug's buggy variant, restricted to the
/// publication chain the bug lives on.
#[derive(Copy, Clone, Debug)]
pub struct BarrierFacts {
    /// The writer side has a store-ordering barrier (`smp_wmb`/release).
    pub writer_store_barrier: bool,
    /// The reader side has a load-ordering barrier (`smp_rmb`/acquire).
    pub reader_load_barrier: bool,
}

/// Extracts the static facts of a bug's buggy variant. These mirror the
/// code in `kernelsim::subsys` with the bug switch enabled.
pub fn facts(bug: BugId) -> BarrierFacts {
    let f = |w, r| BarrierFacts {
        writer_store_barrier: w,
        reader_load_barrier: r,
    };
    match bug {
        // Custom bit lock: no wmb/rmb pair anywhere near it.
        BugId::RdsClearBit => f(false, false),
        // Filter publication: neither half present pre-fix.
        BugId::WatchQueueFilter => f(false, false),
        // Queue-pair publication: neither half.
        BugId::VmciQueuePair => f(false, false),
        // Pool publication: neither half (readers rely on the address
        // dependency).
        BugId::XskPoolPublish => f(false, false),
        // tls_init has its smp_wmb; the getsockopt reader misses the load
        // half — an unpaired wmb, OFence's bread and butter.
        BugId::TlsGetsockopt => f(true, false),
        // Callback-chain publication: neither half.
        BugId::PsockSavedReady => f(false, false),
        // State publication: neither half.
        BugId::XskStateBound => f(false, false),
        // The reader fast path kept its smp_rmb; the writer half is the
        // missing one — an unpaired rmb.
        BugId::SmcClcsock => f(false, true),
        // The WRITE_ONCE/READ_ONCE mis-fix: annotations are not barriers,
        // so neither half is present.
        BugId::TlsSkProt => f(false, false),
        // Deferred-fput flag: neither half.
        BugId::SmcFput => f(false, false),
        // The writer publishes with smp_store_release; the reader's plain
        // load misses the acquire half — an unpaired release.
        BugId::GsmDlci => f(true, false),
        // Table 4 bugs (for completeness; OFence is evaluated on Table 3).
        BugId::KnownVlan => f(false, false),
        BugId::KnownWatchQueuePost => f(false, false),
        BugId::KnownXskUmem => f(false, false),
        BugId::KnownXskState => f(false, false),
        BugId::KnownFget => f(true, false),
        BugId::KnownSbitmap => f(false, false),
        BugId::KnownNbd => f(true, false),
        BugId::KnownTlsErr => f(false, false),
        BugId::KnownUnix => f(true, false),
        // Extended corpus: the bit lock (E1) and the SB pair (E4) carry no
        // wmb/rmb halves; the ring-buffer and filemap publications lost
        // both halves with the reverted patches.
        BugId::ExtBufferDoubleFree => f(false, false),
        BugId::ExtRingBuffer => f(false, false),
        BugId::ExtFilemap => f(false, false),
        BugId::ExtUsbKillUrb => f(false, false),
    }
}

/// The OFence detection criterion: exactly one half of a barrier pair is
/// present — the unpaired barrier marks the suspicious code pair.
pub fn detects(bug: BugId) -> bool {
    let facts = facts(bug);
    facts.writer_store_barrier != facts.reader_load_barrier
}

/// §6.4 result row.
#[derive(Clone, Debug)]
pub struct OfenceRow {
    /// The bug.
    pub bug: BugId,
    /// Whether the paired-barrier pattern flags it.
    pub detectable: bool,
}

/// Runs the §6.4 comparison over all Table 3 bugs.
pub fn compare_table3() -> Vec<OfenceRow> {
    BugId::NEW
        .iter()
        .map(|&bug| OfenceRow {
            bug,
            detectable: detects(bug),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_of_eleven_not_detectable() {
        // The paper's §6.4 headline: "8 out of 11 are hardly detectable by
        // OFence".
        let rows = compare_table3();
        let missed = rows.iter().filter(|r| !r.detectable).count();
        assert_eq!(missed, 8);
    }

    #[test]
    fn unpaired_halves_are_detected() {
        assert!(detects(BugId::TlsGetsockopt), "unpaired smp_wmb");
        assert!(detects(BugId::SmcClcsock), "unpaired smp_rmb");
        assert!(detects(BugId::GsmDlci), "unpaired release");
    }

    #[test]
    fn patternless_bugs_are_missed() {
        for bug in [
            BugId::RdsClearBit,
            BugId::TlsSkProt,
            BugId::PsockSavedReady,
            BugId::SmcFput,
        ] {
            assert!(!detects(bug), "{bug} has no unpaired standard barrier");
        }
    }

    #[test]
    fn facts_match_subsystem_sources() {
        // Cross-check a few facts against the actual buggy-variant profiles:
        // the gsm writer really does publish with a release.
        use kernelsim::{BugSwitches, Kctx, Syscall};
        use oemu::BarrierKind;
        let k = Kctx::new(BugSwitches::only([BugId::GsmDlci]));
        let traces = ozz::profile_sti_on(
            &k,
            &ozz::sti::Sti {
                calls: vec![Syscall::GsmDlciAlloc { idx: 0 }],
            },
        );
        let has_release = traces[0]
            .events
            .iter()
            .filter_map(|e| e.as_barrier())
            .any(|b| b.kind == BarrierKind::Release);
        assert!(has_release, "writer's release half exists in the source");
    }
}
