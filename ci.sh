#!/usr/bin/env bash
# Tier-1 gate for the OZZ reproduction workspace.
#
# The workspace is hermetic: zero crates-io dependencies, every build step
# must succeed with no network access. `--offline` is passed explicitly
# (belt) even though `.cargo/config.toml` already forces offline mode
# (suspenders), so the gate holds in a checkout that strips dotfiles.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: test suite (offline, stepped executor — the default) =="
cargo test -q --offline

echo "== workspace tests (all crates, offline, stepped executor) =="
cargo test --workspace -q --offline

echo "== workspace tests again under the threaded executor =="
OZZ_EXEC=threaded cargo test --workspace -q --offline

echo "== executor equivalence (stepped == threaded, byte-for-byte) =="
cargo test -q --offline --test exec_equivalence

echo "== memory models: litmus + LKMM properties under tso/pso/arm =="
# The TSO run repeats the default-env run on purpose: it pins that an
# explicit OZZ_MEMMODEL=tso is byte-identical to leaving it unset. The
# golden-trace / exec-equivalence gates above stay on the default (TSO)
# model — goldens are a TSO contract.
for m in tso pso arm; do
    echo "--  OZZ_MEMMODEL=$m"
    OZZ_MEMMODEL=$m cargo test -q --offline -p litmus
    OZZ_MEMMODEL=$m cargo test -q --offline --test lkmm_properties
done

echo "== restore differential (incremental == full, all models/executors) =="
cargo test -q --offline --test restore_differential

echo "== rustdoc (all crates, no warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace -q

echo "== campaign determinism (work-stealing merge, worker invariance) =="
cargo test -q --offline --test parallel_determinism

echo "== checkpoint/resume equivalence (kill + fresh-process resume) =="
cargo test -q --offline --test checkpoint_resume

echo "== campaign scaling smoke (8-worker steal dispatch + makespan model) =="
cargo build --release --offline -p bench --bin parallel_scaling
./target/release/parallel_scaling
cat BENCH_parallel_scaling.json

echo "== mti throughput smoke (fresh vs pooled vs stepped vs dirty) =="
cargo build --release --offline -p bench --bin mti_throughput
./target/release/mti_throughput 200 1
cat BENCH_mti_throughput.json
grep -q '"stepped_dirty_mtis_per_sec"' BENCH_mti_throughput.json \
    || { echo "error: dirty-restore arm missing from BENCH_mti_throughput.json" >&2; exit 1; }
grep -q '"restore_full_fallbacks": 0' BENCH_mti_throughput.json \
    || { echo "error: dirty-restore arm took a full-restore fallback" >&2; exit 1; }

echo "== record/replay fidelity + oracle matrix + golden traces =="
cargo test -q --offline --test trace_replay --test oracle_matrix --test golden_trace

echo "== triage battery (minimize + bisect, both executors x all models) =="
# The workspace runs above already cover the default (tso/stepped) and
# threaded cells; the loop pins the full matrix explicitly, including the
# Arm cells where attribution degrades to a principled Inconclusive.
for m in tso pso arm; do
    echo "--  OZZ_MEMMODEL=$m"
    OZZ_MEMMODEL=$m cargo test -q --offline --test triage_minimal
    OZZ_MEMMODEL=$m OZZ_EXEC=threaded cargo test -q --offline --test triage_minimal
done

echo "== trace minimization bench (full corpus shrink + replay cost) =="
cargo build --release --offline -p bench --bin trace_minimize
./target/release/trace_minimize
cat BENCH_trace_minimize.json
for key in events_before_median events_after_median reduction_pct_median \
    replays_median minimize_wall_ms_median; do
    grep -q "\"$key\"" BENCH_trace_minimize.json \
        || { echo "error: $key missing from BENCH_trace_minimize.json" >&2; exit 1; }
done

echo "== bounded exhaustive explorer smoke (hint-generator differential) =="
cargo run -q --release --offline -p modelcheck --bin explore -- watch_queue

echo "== trace replay bench (search vs replay) =="
cargo build --release --offline -p bench --bin trace_replay
./target/release/trace_replay 30000 3
cat BENCH_trace_replay.json

echo "== formatting =="
cargo fmt --check

echo "== deprecation gate (workspace builds clean with -D deprecated) =="
# Last build step on purpose: changing RUSTFLAGS re-keys every compilation
# unit, so running this mid-script would force a second full rebuild of
# everything after it.
RUSTFLAGS="-D deprecated" cargo build --workspace --all-targets --offline

echo "== hermeticity: no crates-io dependencies declared =="
if grep -rn 'rand = \|parking_lot\|crossbeam\|proptest\|criterion =' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "error: external dependency declared in a manifest" >&2
    exit 1
fi

echo "ci.sh: all gates passed"
