//! Case study 1 (§6.1, Figure 7): the TLS `WRITE_ONCE` mis-fix, found by
//! the full OZZ fuzzing pipeline.
//!
//! History: developers saw KCSAN reports on `sk->sk_prot`, annotated the
//! accesses with `WRITE_ONCE`/`READ_ONCE`, and considered the race fixed.
//! The annotations silence the race detector but order nothing — the proto
//! swap can still become visible before the TLS context is initialised, and
//! a concurrent `setsockopt` dereferences NULL (`#9 → #20 → #28 → #6`).
//!
//! This example lets OZZ *discover* the bug (no hand-built forcing): the
//! fuzzer generates inputs, profiles them, computes Algorithm 1 hints, and
//! executes MTIs until the oracle fires — then prints the diagnosis OZZ
//! gives developers: crash title, the hypothetical barrier location, and
//! the reordering that was enforced.
//!
//! Run with: `cargo run --release --example tls_case_study`

use kernelsim::{BugId, BugSwitches};
use ozz::fuzzer::{FuzzConfig, Fuzzer};

fn main() {
    println!("=== Case study: TLS sk_prot mis-fix (Bug #9, Figure 7) ===\n");
    println!("kernel build: only BugId::TlsSkProt reverted (the smp_wmb is missing,");
    println!("the WRITE_ONCE/READ_ONCE annotations are present)\n");

    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 4,
        bugs: BugSwitches::only([BugId::TlsSkProt]),
        ..FuzzConfig::default()
    });
    fuzzer.run_until(10_000, 1);

    let stats = fuzzer.stats();
    println!(
        "fuzzing: {} STIs profiled, {} MTIs executed, {} coverage sites\n",
        stats.stis_run, stats.mtis_run, stats.coverage
    );
    match fuzzer.found().get(BugId::TlsSkProt.expected_title()) {
        Some(bug) => {
            println!("OZZ report:");
            println!("  crash:     {}", bug.title);
            println!("  pair:      {:?} || {:?}", bug.pair.0, bug.pair.1);
            println!(
                "  reorder:   {} ({} accesses reordered)",
                bug.reorder_type,
                {
                    // The rank-0 hint reorders the most accesses.
                    bug.hint_rank + 1
                }
            );
            println!("  diagnosis: {}", bug.barrier_location);
            println!(
                "  found after {} tests (hint rank {})",
                bug.tests_to_find, bug.hint_rank
            );
            println!();
            println!("The diagnosis points into tls_init: the missing smp_wmb belongs right");
            println!("before the proto-table swap — exactly the upstream fix.");
        }
        None => {
            println!("bug not found within budget — increase it");
            std::process::exit(1);
        }
    }
}
