//! Figure 10 (§10.4): the synthetic Rust OOO bug, plus the LKMM litmus
//! corpus.
//!
//! The paper's Appendix shows a store-buffering program with
//! `Ordering::Relaxed` atomics whose assertion `x == 1 || y == 1` can fail
//! under out-of-order execution, and confirms OEMU triggers it. Relaxed
//! Rust atomics map to OEMU's plain accesses (no implied barriers); the
//! litmus harness exhaustively explores OEMU's control space and finds the
//! assertion-violating outcome — and shows `smp_mb` (`Ordering::SeqCst`
//! territory) removing it.
//!
//! Run with: `cargo run --example rust_litmus`

use litmus::tests::{
    corr, load_buffering, message_passing, mp_read_once_flag, store_buffering, Barriers,
};

fn main() {
    println!("=== Figure 10: the Rust relaxed-atomics OOO bug ===\n");
    println!("  // thread 1: x.store(1, Relaxed); y.load(Relaxed)");
    println!("  // thread 2: y.store(1, Relaxed); x.load(Relaxed)");
    println!("  // assert!(x == 1 || y == 1) -- violated iff both loads return 0\n");

    let sb = store_buffering(false);
    let outcomes = sb.explore();
    println!("  observable outcomes (r0, r1): {outcomes:?}");
    let violated = outcomes.contains(&vec![0, 0]);
    println!("  assertion violation (0, 0) reachable: {violated}");
    assert!(violated, "OEMU must trigger the Figure 10 bug");

    let sb_mb = store_buffering(true);
    println!(
        "  with smp_mb between the accesses:      {}\n",
        if sb_mb.reachable(&[0, 0]) {
            "still reachable (?!)"
        } else {
            "forbidden — the fix"
        }
    );

    println!("=== LKMM compliance corpus (Appendix 10.1) ===\n");
    let rows: Vec<(&str, bool, bool)> = vec![
        (
            "MP (no barriers): flag=1, data=0",
            message_passing(Barriers::None).reachable(&[1, 0]),
            true,
        ),
        (
            "MP (wmb only):    flag=1, data=0",
            message_passing(Barriers::WriterOnly).reachable(&[1, 0]),
            true,
        ),
        (
            "MP (wmb + rmb):   flag=1, data=0",
            message_passing(Barriers::Both).reachable(&[1, 0]),
            false,
        ),
        (
            "MP (rel + acq):   flag=1, data=0",
            message_passing(Barriers::ReleaseAcquire).reachable(&[1, 0]),
            false,
        ),
        (
            "MP (READ_ONCE):   flag=1, data=0",
            mp_read_once_flag().reachable(&[1, 0]),
            false,
        ),
        (
            "LB: r0=1, r1=1 (needs load-store reordering)",
            load_buffering().reachable(&[1, 1]),
            false,
        ),
        (
            "CoRR: r0=1, r1=0 (reads going backwards)",
            corr().reachable(&[1, 0]),
            false,
        ),
    ];
    for (name, observed, expected) in rows {
        let verdict = if observed == expected {
            "ok"
        } else {
            "VIOLATION"
        };
        println!(
            "  [{verdict}] {name}: {}",
            if observed { "reachable" } else { "forbidden" }
        );
        assert_eq!(observed, expected);
    }
    println!("\nOEMU reaches every architecture-possible weak outcome and none the LKMM forbids.");
}
