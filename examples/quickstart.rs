//! Quickstart: reproduce the paper's running example (Figure 1).
//!
//! The watch_queue/pipe ring buffer bug \[31\]: `post_one_notification`
//! initialises a ring entry and bumps `head`; `pipe_read` checks
//! `head != tail` and calls through the entry's ops table. With the barrier
//! pair missing, two different reorderings crash the kernel:
//!
//! - store-store in the writer (execution order `#8 → #14 → #18 → #6`),
//! - load-load in the reader (execution order `#18 → #6 → #8 → #14`).
//!
//! This example drives both, by hand, through the public API — profiling
//! the syscalls, installing OEMU's Table 2 reordering instructions, and
//! running the pair under the custom scheduler — then shows the patched
//! kernel surviving the same forcing.
//!
//! Run with: `cargo run --example quickstart`

use kernelsim::{execute, run_one, BugId, BugSwitches, ExecRequest, Kctx, Syscall};
use ksched::{BreakWhen, Breakpoint, SchedulePlan};
use oemu::{AccessKind, Tid};

fn main() {
    println!("=== Figure 1: the watch_queue/pipe OOO bug ===\n");
    store_store_reordering();
    load_load_reordering();
    patched_kernel_survives();
}

/// Profiles one syscall on a scratch machine and returns its accesses.
fn profile(bugs: &BugSwitches, call: Syscall) -> Vec<oemu::AccessRecord> {
    let k = Kctx::new(bugs.clone());
    k.engine.set_profiling(true);
    run_one(&k, Tid(0), call);
    k.engine.take_profile(Tid(0)).accesses().copied().collect()
}

/// The hypothetical store barrier test (Figure 5a): delay the writer's
/// entry-initialisation stores so `head += 1` overtakes them.
fn store_store_reordering() {
    println!("--- store-store reordering (writer side, order #8 -> #14 -> #18 -> #6) ---");
    let bugs = BugSwitches::only([BugId::KnownWatchQueuePost]);
    let accesses = profile(&bugs, Syscall::WqPost);
    let stores: Vec<_> = accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Store)
        .collect();
    // Stores in program order: buf->len, buf->ops, head. Delay the first
    // two; break right after the head store commits.
    let k = Kctx::new(bugs);
    for s in &stores[..stores.len() - 1] {
        println!("  delay_store_at({})", s.iid);
        k.engine.delay_store_at(Tid(0), s.iid);
    }
    let head_store = stores.last().expect("writer has stores");
    let plan = SchedulePlan {
        first: Tid(0),
        breakpoint: Some(Breakpoint {
            iid: head_store.iid,
            when: BreakWhen::After,
            hit: 1,
        }),
    };
    println!("  schedule_at(after {})", head_store.iid);
    let out = execute(
        &k,
        ExecRequest::live(plan, Syscall::WqPost, Syscall::PipeRead),
    )
    .outcome;
    println!("  -> {}\n", out.title().unwrap_or("no crash (unexpected!)"));
    assert!(out.crashed());
}

/// The hypothetical load barrier test (Figure 5b): version the reader's
/// entry loads so they read pre-publication values while `head` reads new.
fn load_load_reordering() {
    println!("--- load-load reordering (reader side, order #18 -> #6 -> #8 -> #14) ---");
    let bugs = BugSwitches::only([BugId::KnownWatchQueuePost]);
    // Profile the reader against a machine that has something to read.
    let k = Kctx::new(bugs.clone());
    run_one(&k, Tid(0), Syscall::WqPost);
    k.engine.set_profiling(true);
    run_one(&k, Tid(1), Syscall::PipeRead);
    let loads: Vec<_> = k
        .engine
        .take_profile(Tid(1))
        .accesses()
        .filter(|a| a.kind == AccessKind::Load)
        .copied()
        .collect();
    // Loads in program order: head, tail, buf->len, buf->ops, ops->confirm.
    // Version everything after the head check.
    let k = Kctx::new(bugs);
    for l in &loads[1..] {
        println!("  read_old_value_at({})", l.iid);
        k.engine.read_old_value_at(Tid(1), l.iid);
    }
    let plan = SchedulePlan {
        first: Tid(1),
        breakpoint: Some(Breakpoint {
            iid: loads[0].iid,
            when: BreakWhen::Before,
            hit: 1,
        }),
    };
    println!("  schedule_at(before {})", loads[0].iid);
    let out = execute(
        &k,
        ExecRequest::live(plan, Syscall::WqPost, Syscall::PipeRead),
    )
    .outcome;
    println!("  -> {}\n", out.title().unwrap_or("no crash (unexpected!)"));
    assert!(out.crashed());
}

/// The patched kernel (barriers present) survives the identical forcing:
/// the smp_wmb flushes the delayed stores before `head` moves.
fn patched_kernel_survives() {
    println!("--- the patched kernel under the same forcing ---");
    let bugs = BugSwitches::none();
    let accesses = profile(&bugs, Syscall::WqPost);
    let stores: Vec<_> = accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Store)
        .collect();
    let k = Kctx::new(bugs);
    for s in &stores[..stores.len() - 1] {
        k.engine.delay_store_at(Tid(0), s.iid);
    }
    let plan = SchedulePlan {
        first: Tid(0),
        breakpoint: Some(Breakpoint {
            iid: stores.last().expect("stores").iid,
            when: BreakWhen::After,
            hit: 1,
        }),
    };
    let out = execute(
        &k,
        ExecRequest::live(plan, Syscall::WqPost, Syscall::PipeRead),
    )
    .outcome;
    assert!(!out.crashed());
    println!(
        "  -> no crash: smp_wmb() flushed the store buffer before head moved (ret = {})",
        out.ret_b
    );
}
