//! A tour of the OEMU engine: Figures 3 and 4 of the paper, executed
//! step by step on the raw engine API.
//!
//! Run with: `cargo run --example oemu_tour`

use oemu::{iid, Engine, LoadAnn, StoreAnn, Tid};

fn main() {
    figure3_delayed_store();
    figure4_versioned_load();
    store_forwarding();
}

/// Figure 3: the delayed store operation.
///
/// `delay_store_at(I1)` holds `X = 1` in the per-thread virtual store
/// buffer while `Y = 2` commits — other cores observe Y change before X, a
/// store-store reordering. `smp_wmb()` drains the buffer.
fn figure3_delayed_store() {
    println!("=== Figure 3: delayed store operation ===");
    let engine = Engine::new(2);
    let (x, y) = (0x1000, 0x1008);
    let (i1, i2) = (iid!(), iid!());

    engine.delay_store_at(Tid(0), i1); // (1) the Table 2 interface
    engine.store(Tid(0), i1, x, 1, StoreAnn::Plain); // (2)(3) value held
    println!(
        "  after I1 (X = 1, delayed):   cpu1 sees X = {}",
        engine.load(Tid(1), iid!(), x, LoadAnn::Plain)
    );
    engine.store(Tid(0), i2, y, 2, StoreAnn::Plain); // (4) commits
    println!(
        "  after I2 (Y = 2, committed): cpu1 sees X = {}, Y = {}  <- reordered!",
        engine.load(Tid(1), iid!(), x, LoadAnn::Plain),
        engine.load(Tid(1), iid!(), y, LoadAnn::Plain)
    );
    engine.smp_wmb(Tid(0), iid!()); // (5) flush
    println!(
        "  after smp_wmb():             cpu1 sees X = {}, Y = {}\n",
        engine.load(Tid(1), iid!(), x, LoadAnn::Plain),
        engine.load(Tid(1), iid!(), y, LoadAnn::Plain)
    );
}

/// Figure 4: the versioned load operation.
///
/// After syscall A's `smp_rmb()` at t3, syscall B stores to &Z (t4) and &W
/// (t5). A's versioned load on &Z reads the *old* value 0 from the store
/// history while its plain load on &W reads 2 — emulating the load-load
/// reordering of I1 and I2 within the versioning window `(t3, t_cur]`.
fn figure4_versioned_load() {
    println!("=== Figure 4: versioned load operation ===");
    let engine = Engine::new(2);
    let (z, w) = (0x2000, 0x2008);
    let i2 = iid!();

    engine.read_old_value_at(Tid(0), i2); // (1)
    engine.smp_rmb(Tid(0), iid!()); // (3) versioning window starts here
    engine.store(Tid(1), iid!(), z, 1, StoreAnn::Plain); // (4) t4
    engine.store(Tid(1), iid!(), w, 2, StoreAnn::Plain); // (5) t5
    let r1 = engine.load(Tid(0), iid!(), w, LoadAnn::Plain); // (6) plain
    let r2 = engine.load(Tid(0), i2, z, LoadAnn::Plain); // (7) versioned
    println!("  r1 = {r1} (plain load of &W: the new value)");
    println!("  r2 = {r2} (versioned load of &Z: the old value from the store history)");
    println!("  -> I2 behaved as if executed right after t3, before B's stores\n");
    assert_eq!((r1, r2), (2, 0));
}

/// §3.1 "Forwarding values to subsequent loads": the delaying thread still
/// observes its own program order through the hierarchical search.
fn store_forwarding() {
    println!("=== store-to-load forwarding ===");
    let engine = Engine::new(2);
    let x = 0x3000;
    let i1 = iid!();
    engine.delay_store_at(Tid(0), i1);
    engine.store(Tid(0), i1, x, 42, StoreAnn::Plain);
    println!(
        "  cpu0 (owner)  sees X = {} (forwarded from its store buffer)",
        engine.load(Tid(0), iid!(), x, LoadAnn::Plain)
    );
    println!(
        "  cpu1 (other)  sees X = {} (memory: the store is still in flight)",
        engine.load(Tid(1), iid!(), x, LoadAnn::Plain)
    );
    let stats = engine.stats();
    println!(
        "  engine stats: {} delayed, {} forwarded, {} committed",
        stats.delayed, stats.forwards, stats.commits
    );
}
