//! Case study 2 (§6.1, Figure 8): the RDS incorrect customised lock.
//!
//! `acquire_in_xmit`/`release_in_xmit` implement a try-lock with bit
//! operations. Releasing with `clear_bit` — which carries no ordering —
//! lets the critical section's stores drain *after* the lock bit clears: a
//! second CPU acquires the lock and sees a torn protected state, walking a
//! scatter-gather cursor off the end of a message (KASAN slab-out-of-bounds
//! read). There is **no data race**: every access is inside the lock, which
//! is why data-race detectors are structurally blind here.
//!
//! This example shows the three-act structure:
//! 1. the bug via the OZZ pipeline on the buggy kernel,
//! 2. the KCSAN baseline finding *nothing* on the same kernel,
//! 3. `clear_bit_unlock` (the fix) surviving the same forcing.
//!
//! Run with: `cargo run --release --example rds_lock`

use baselines::kcsan::scan_pair;
use kernelsim::{BugId, BugSwitches, Syscall};
use ozz::hints::calc_hints;
use ozz::mti::build_mtis;
use ozz::profile_sti;
use ozz::sti::Sti;

fn sti() -> Sti {
    // Pump the cursor, requeue, transmit: the repro shape OZZ generates
    // from the rds template.
    Sti {
        calls: vec![
            Syscall::RdsLoopXmit,
            Syscall::RdsSendXmit,
            Syscall::RdsLoopXmit,
        ],
    }
}

fn run_pipeline(bugs: BugSwitches) -> Option<(String, usize)> {
    let traces = profile_sti(&sti(), bugs.clone());
    let mtis = build_mtis(
        &sti(),
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        16,
    );
    for (n, mti) in mtis.iter().enumerate() {
        let out = mti.run(bugs.clone());
        if out.crashed() {
            return Some((out.title().expect("crashed").to_string(), n + 1));
        }
    }
    None
}

fn main() {
    println!("=== Case study: RDS customised lock (Bug #1, Figure 8) ===\n");

    // Act 1: OZZ on the buggy kernel (clear_bit releases the lock).
    println!("--- OZZ on the buggy kernel (release_in_xmit uses clear_bit) ---");
    let buggy = BugSwitches::only([BugId::RdsClearBit]);
    match run_pipeline(buggy.clone()) {
        Some((title, tests)) => {
            println!("  crash after {tests} tests: {title}");
            println!("  mechanism: the cursor-reset store sat in the virtual store buffer");
            println!("  while the relaxed clear_bit committed — mutual exclusion broken.\n");
        }
        None => {
            println!("  bug not triggered (unexpected)");
            std::process::exit(1);
        }
    }

    // Act 2: the KCSAN baseline on the same kernel.
    println!("--- KCSAN baseline on the same kernel ---");
    let races = scan_pair(buggy, &sti(), 1, 2);
    println!(
        "  data races reported: {} — the lock means the accesses never overlap\n  in any in-order execution; there is nothing for a race detector to see.\n",
        races.len()
    );
    assert!(races.is_empty());

    // Act 3: the fix.
    println!("--- the fixed kernel (clear_bit_unlock) under the same pipeline ---");
    let fixed = BugSwitches::none();
    match run_pipeline(fixed) {
        Some((title, _)) => {
            println!("  unexpected crash: {title}");
            std::process::exit(1);
        }
        None => {
            println!("  no crash: release semantics flush the critical section before");
            println!("  the bit clears. The fix is a one-liner: clear_bit -> clear_bit_unlock.");
        }
    }
}
