//! A miniature fuzzing campaign over the all-bugs kernel (the Table 3
//! workflow of Figure 6, scaled to seconds).
//!
//! Watch the fuzzer's three-step loop at work: STI generation with
//! profiling, Algorithm 1 hint calculation, and MTI execution under the
//! custom scheduler — reporting each unique crash as it is found, with the
//! hypothetical-barrier diagnosis.
//!
//! Run with: `cargo run --release --example fuzz_campaign [max_tests]`

use kernelsim::BugSwitches;
use ozz::fuzzer::{FuzzConfig, Fuzzer};

fn main() {
    let max_tests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    println!("=== OZZ campaign: all 20 seeded bugs, budget {max_tests} tests ===\n");
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    let mut reported = std::collections::HashSet::new();
    while fuzzer.stats().mtis_run < max_tests {
        fuzzer.step();
        // Report newly found bugs as the campaign progresses. `found()` is
        // sorted by title, not discovery order, so track what was printed
        // by key rather than by count.
        for (title, info) in fuzzer.found() {
            if !reported.insert(title.clone()) {
                continue;
            }
            println!("[test {:>6}] {title}", info.tests_to_find);
            println!("             pair: {:?} || {:?}", info.pair.0, info.pair.1);
            println!(
                "             {} ({}, hint rank {})",
                info.barrier_location, info.reorder_type, info.hint_rank
            );
        }
    }
    let stats = fuzzer.stats();
    println!(
        "\ncampaign done: {} unique crashes | {} STIs | {} MTIs | {} coverage sites | corpus {}",
        fuzzer.found().len(),
        stats.stis_run,
        stats.mtis_run,
        stats.coverage,
        fuzzer.corpus_len()
    );
}
