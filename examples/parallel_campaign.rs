//! A sharded fuzzing campaign over the all-bugs kernel: the Table 3
//! workflow of `examples/fuzz_campaign.rs`, split across worker threads.
//!
//! Each shard owns a private fuzzer seeded from `(seed, shard)`; shards
//! exchange new-coverage corpus entries at epoch barriers and the
//! coordinator merges every shard's crashes into one deduplicated report.
//! The merged bug list is a pure function of `(seed, shards, budget)` —
//! rerun with the same arguments and the output is byte-identical, no
//! matter how the OS schedules the threads.
//!
//! Run with: `cargo run --release --example parallel_campaign [shards] [budget]`

use ozz::parallel::parallel_campaign;

fn main() {
    let mut args = std::env::args().skip(1);
    let shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000);
    println!("=== OZZ sharded campaign: {shards} shards, {budget} MTIs total ===\n");

    let report = parallel_campaign(2024, shards, budget);

    for (title, info) in &report.found {
        println!("[shard test {:>6}] {title}", info.tests_to_find);
        println!("             pair: {:?} || {:?}", info.pair.0, info.pair.1);
        println!(
            "             {} ({}, hint rank {})",
            info.barrier_location, info.reorder_type, info.hint_rank
        );
    }

    println!("\nper-shard:");
    for (shard, s) in report.shard_stats.iter().enumerate() {
        println!(
            "  shard {shard}: {} STIs | {} MTIs | {} coverage sites{}",
            s.stis_run,
            s.mtis_run,
            s.coverage,
            if s.stalled { " | stalled" } else { "" }
        );
    }
    let stats = &report.stats;
    println!(
        "\ncampaign done: {} unique crashes | {} STIs | {} MTIs | {} union coverage sites",
        report.found.len(),
        stats.stis_run,
        stats.mtis_run,
        stats.coverage
    );
}
