//! A sharded fuzzing campaign over the all-bugs kernel: the Table 3
//! workflow of `examples/fuzz_campaign.rs`, scaled out through the
//! unified campaign service.
//!
//! Each shard owns a private fuzzer seeded from `(seed, shard)`; shards
//! exchange new-coverage corpus entries at round boundaries and the
//! coordinator merges every shard's crashes into one deduplicated report
//! plus a crash database. Batches are dealt to a work-stealing worker
//! pool, yet the merged bug list is a pure function of
//! `(seed, shards, budget)` — rerun with the same arguments and the
//! output is byte-identical, no matter how many workers run it or how
//! the OS schedules them.
//!
//! Run with: `cargo run --release --example parallel_campaign [shards] [budget] [workers]`

use ozz::campaign::CampaignBuilder;

fn main() {
    let mut args = std::env::args().skip(1);
    let shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(shards);
    println!(
        "=== OZZ sharded campaign: {shards} shards x {workers} workers, {budget} MTIs total ===\n"
    );

    let report = CampaignBuilder::new(2024)
        .shards(shards)
        .workers(workers)
        .budget(budget)
        .run();

    for (title, info) in &report.found {
        println!("[shard test {:>6}] {title}", info.tests_to_find);
        println!("             pair: {:?} || {:?}", info.pair.0, info.pair.1);
        println!(
            "             {} ({}, hint rank {})",
            info.barrier_location, info.reorder_type, info.hint_rank
        );
    }

    println!("\nper-shard:");
    for s in &report.shard_stats {
        println!(
            "  shard {}: {} STIs | {} MTIs | {} coverage sites | {} rounds | {} steals{}",
            s.shard,
            s.fuzz.stis_run,
            s.fuzz.mtis_run,
            s.fuzz.coverage,
            s.epochs,
            s.steals,
            if s.fuzz.stalled { " | stalled" } else { "" }
        );
    }
    let stats = &report.stats;
    println!(
        "\ncampaign done in {} rounds: {} unique crashes ({} deduped sightings) | {} STIs | {} MTIs | {} union coverage sites",
        report.rounds,
        report.found.len(),
        report.crashes.records().map(|r| r.count).sum::<u64>(),
        stats.stis_run,
        stats.mtis_run,
        stats.coverage
    );
}
