//! Crash-database triage CLI: run a campaign (or load a saved database)
//! and query its deduplicated crashes.
//!
//! Every crash occurrence a campaign observes is recorded in its
//! [`ozz::crashdb::CrashDb`], keyed by the diagnosis digest, with
//! sighting counts, first/last-seen rounds, the sighting shard, and
//! per-memory-model / per-kernel-build tallies. This example is the
//! query surface:
//!
//! ```text
//! # fuzz, print the triage table, and save the database
//! cargo run --release --example crashdb_report -- --budget 4000 --shards 4 --save crashes.db
//!
//! # reload and filter it later, without re-fuzzing
//! cargo run --release --example crashdb_report -- --load crashes.db --title watch_queue
//! cargo run --release --example crashdb_report -- --load crashes.db --reorder S-S --min-count 2
//!
//! # fuzz, then minimize + bisect every found bug and store the results
//! cargo run --release --example crashdb_report -- --budget 4000 --triage --save crashes.db
//! ```

use kernelsim::BugSwitches;
use ozz::campaign::CampaignBuilder;
use ozz::crashdb::{CrashDb, CrashQuery, TriageInfo};
use ozz::triage::{BisectOutcome, Triager};

fn main() {
    let mut budget: u64 = 4000;
    let mut shards: usize = 4;
    let mut seed: u64 = 2024;
    let mut save: Option<String> = None;
    let mut load: Option<String> = None;
    let mut triage = false;
    let mut query = CrashQuery::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match flag.as_str() {
            "--budget" => budget = value().parse().expect("--budget takes a number"),
            "--shards" => shards = value().parse().expect("--shards takes a number"),
            "--seed" => seed = value().parse().expect("--seed takes a number"),
            "--save" => save = Some(value()),
            "--load" => load = Some(value()),
            "--triage" => triage = true,
            "--title" => query.title_contains = Some(value()),
            "--model" => query.model = Some(value()),
            "--reorder" => {
                let v = value();
                query.reorder = Some(
                    kernelsim::ReorderType::parse(&v)
                        .unwrap_or_else(|| panic!("unknown reorder type {v:?} (S-S, S-L or L-L)")),
                )
            }
            "--min-count" => query.min_count = value().parse().expect("--min-count takes a number"),
            "--since-epoch" => {
                query.seen_since_epoch =
                    Some(value().parse().expect("--since-epoch takes a number"))
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    let db = match load {
        Some(path) => {
            assert!(
                !triage,
                "--triage re-runs each bug's reproducer and needs the campaign's \
                 recorded traces; run it without --load"
            );
            println!("loading crash database from {path}\n");
            CrashDb::load(std::path::Path::new(&path)).expect("readable crash database")
        }
        None => {
            println!("=== campaign: seed {seed}, {shards} shards, {budget} MTIs ===\n");
            let report = CampaignBuilder::new(seed)
                .shards(shards)
                .budget(budget)
                .run();
            println!(
                "{} unique crashes | {} sightings | {} rounds\n",
                report.crashes.len(),
                report.crashes.records().map(|r| r.count).sum::<u64>(),
                report.rounds
            );
            let mut db = report.crashes;
            if triage {
                // The campaign runs on the all-switches build; minimize and
                // bisect each found bug's recorded trace against it.
                let triager = Triager::new(BugSwitches::all());
                for bug in report.found.values() {
                    let result = triager.triage_found(bug);
                    println!("{}", result.report);
                    db.set_triage(
                        bug.digest_fnv,
                        TriageInfo {
                            events_before: result.minimized.stats.events_before,
                            events_after: result.minimized.stats.events_after,
                            replays: result.minimized.stats.replays,
                            culprit: match &result.bisect {
                                BisectOutcome::Culprit(c) => Some(c.token().to_string()),
                                BisectOutcome::Inconclusive(_) => None,
                            },
                            min_trace: result.minimized.trace.to_text(),
                        },
                    );
                }
            }
            db
        }
    };

    let hits = db.query(&query);
    println!("{} of {} records match the query:\n", hits.len(), db.len());
    print!("{}", db.report());
    if !hits.is_empty() && hits.len() < db.len() {
        println!("\nfiltered:");
        for r in hits {
            println!(
                "  {:016x} {:>5}x [{}] shard {} rounds {}..{} {}",
                r.digest_fnv,
                r.count,
                r.reorder_type,
                r.first_seen_shard,
                r.first_seen_epoch,
                r.last_seen_epoch,
                r.title
            );
        }
    }

    if let Some(path) = save {
        db.save(std::path::Path::new(&path))
            .expect("writable database path");
        println!("\nsaved {} records to {path}", db.len());
    }
}
